//! `neo-xtask` — workspace invariant linter and telemetry-artifact checker.
//!
//! `cargo run -p neo-xtask -- lint` scans every library source file in the
//! workspace (crates/*/src plus the root facade src/) and enforces the
//! correctness contract behind the paper's §4.1.2 reproducibility claim:
//!
//! 1. **panic** — no `unwrap()`/`expect()`/`panic!`/`unreachable!`/`todo!`/
//!    `unimplemented!` in non-test library code unless the line carries a
//!    `// lint: allow(panic) — <reason>` annotation.
//! 2. **hash_iter** — no `HashMap`/`HashSet` iteration in the
//!    determinism-critical crates (collectives, sharding, embeddings,
//!    trainer); hash order varies run to run and breaks bitwise
//!    reproducibility.
//! 3. **crate_header** — `#![forbid(unsafe_code)]` and `#![deny(warnings)]`
//!    in every crate root.
//! 4. **props_cover** — every `pub fn` in `crates/collectives/src/group.rs`
//!    is named by a property test in `crates/collectives/tests/props.rs`.
//! 5. **span_balance** — telemetry span guards are bound rather than
//!    dropped on creation, and `begin_iteration`/`end_iteration` calls pair
//!    up within each file.
//!
//! `cargo run -p neo-xtask -- json-check [--min-phases N] <files...>`
//! validates telemetry exports produced by `--telemetry`: each file must
//! parse as JSON; a metrics summary (object with a `spans` key) must carry
//! at least N distinct span phase names, and a Chrome trace (object with a
//! `traceEvents` key) must give every event a name, phase and timestamp.
//!
//! `shims/` is excluded from linting: those crates are offline stand-ins
//! for third-party dependencies and follow upstream APIs, not this repo's
//! conventions.
//!
//! Exit status: 0 when clean, 1 with diagnostics on violations, 2 on usage
//! or I/O errors.

#![forbid(unsafe_code)]
#![deny(warnings)]

mod rules;
mod scan;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use scan::{Diagnostic, SourceFile};

/// Crates whose sources must not iterate hash containers (rule `hash_iter`).
const DETERMINISM_CRITICAL: &[&str] = &["collectives", "sharding", "embeddings", "trainer"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str =
    "usage: neo-xtask lint [--root <dir>] | neo-xtask json-check [--min-phases N] <files...>";

/// Dispatches to a subcommand; returns the number of problems found.
fn run(args: &[String]) -> Result<usize, String> {
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("json-check") => run_json_check(&args[1..]),
        _ => Err(USAGE.into()),
    }
}

/// Runs the lint, prints diagnostics; returns their count.
fn run_lint(args: &[String]) -> Result<usize, String> {
    let mut root = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a path argument")?;
                root = Some(PathBuf::from(v));
            }
            other => return Err(format!("unknown argument `{other}` ({USAGE})")),
        }
    }
    let root = match root {
        Some(r) => r,
        // compiled-in manifest dir: crates/xtask -> crates -> workspace root
        None => Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .ok_or("cannot locate workspace root")?
            .to_path_buf(),
    };

    let diags = lint_root(&root)?;
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("neo-xtask lint: ok (panic, hash_iter, crate_header, props_cover, span_balance)");
    } else {
        println!("neo-xtask lint: {} violation(s)", diags.len());
    }
    Ok(diags.len())
}

/// Validates telemetry export files; returns the number of bad files.
fn run_json_check(args: &[String]) -> Result<usize, String> {
    let mut min_phases = 0usize;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--min-phases" => {
                let v = it.next().ok_or("--min-phases requires a number")?;
                min_phases = v
                    .parse()
                    .map_err(|_| format!("invalid --min-phases value `{v}`"))?;
            }
            other => files.push(PathBuf::from(other)),
        }
    }
    if files.is_empty() {
        return Err(format!("json-check needs at least one file ({USAGE})"));
    }
    let mut problems = 0usize;
    for path in &files {
        let shown = path.display();
        let text = fs::read_to_string(path).map_err(|e| format!("reading {shown}: {e}"))?;
        let doc = match neo_telemetry::json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                println!("{shown}: invalid JSON: {e}");
                problems += 1;
                continue;
            }
        };
        if let Some(spans) = doc.get("spans").and_then(|s| s.as_array()) {
            let mut names: Vec<&str> = spans
                .iter()
                .filter_map(|s| s.get("name").and_then(|n| n.as_str()))
                .collect();
            let total = spans.len();
            names.sort_unstable();
            names.dedup();
            if names.len() < min_phases {
                println!(
                    "{shown}: only {} distinct span phase(s), need at least {min_phases}",
                    names.len()
                );
                problems += 1;
            } else {
                println!(
                    "{shown}: ok ({} distinct phases across {total} spans)",
                    names.len()
                );
            }
        } else if let Some(events) = doc.get("traceEvents").and_then(|e| e.as_array()) {
            let malformed = events
                .iter()
                .filter(|e| {
                    e.get("name").and_then(|n| n.as_str()).is_none()
                        || e.get("ph").and_then(|p| p.as_str()).is_none()
                        || e.get("ts").and_then(|t| t.as_f64()).is_none()
                })
                .count();
            if malformed > 0 {
                println!("{shown}: {malformed} trace event(s) missing name/ph/ts fields");
                problems += 1;
            } else {
                println!("{shown}: ok ({} trace events)", events.len());
            }
        } else {
            println!("{shown}: ok (parsed, no span payload)");
        }
    }
    Ok(problems)
}

/// Runs all five rules over the workspace at `root`.
fn lint_root(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let mut diags = Vec::new();

    for crate_dir in crate_dirs(root)? {
        let name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_owned();
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs(&src, &mut files).map_err(|e| format!("walking {}: {e}", src.display()))?;
        files.sort();

        let hash_critical = DETERMINISM_CRITICAL.contains(&name.as_str());
        for path in &files {
            let file = load(root, path)?;
            diags.extend(rules::check_panics(&file));
            diags.extend(rules::check_span_balance(&file));
            if hash_critical {
                diags.extend(rules::check_hash_iteration(&file));
            }
        }

        // crate root header check (lib.rs for libraries, main.rs for binaries)
        for root_file in ["lib.rs", "main.rs"] {
            let candidate = src.join(root_file);
            if candidate.is_file() {
                let file = load(root, &candidate)?;
                diags.extend(rules::check_crate_header(&file));
            }
        }
    }

    // props coverage of the collectives process-group API
    let group_path = root.join("crates/collectives/src/group.rs");
    let props_path = root.join("crates/collectives/tests/props.rs");
    if group_path.is_file() {
        let group = load(root, &group_path)?;
        if props_path.is_file() {
            let props = load(root, &props_path)?;
            diags.extend(rules::check_props_coverage(&group, &props));
        } else {
            diags.push(Diagnostic {
                path: rel(root, &group_path),
                line: 1,
                rule: "props_cover",
                message: "crates/collectives/tests/props.rs is missing".into(),
            });
        }
    }

    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(diags)
}

/// All lintable crate directories: `crates/*` with a Cargo.toml, plus the
/// workspace root package itself (its `src/` holds the facade lib.rs).
fn crate_dirs(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates = root.join("crates");
    let mut dirs = Vec::new();
    let entries =
        fs::read_dir(&crates).map_err(|e| format!("reading {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", crates.display()))?;
        let path = entry.path();
        if path.is_dir() && path.join("Cargo.toml").is_file() {
            dirs.push(path);
        }
    }
    if root.join("Cargo.toml").is_file() && root.join("src").is_dir() {
        dirs.push(root.to_path_buf());
    }
    dirs.sort();
    Ok(dirs)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn load(root: &Path, path: &Path) -> Result<SourceFile, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    Ok(SourceFile::parse(&rel(root, path), &text))
}

fn rel(root: &Path, path: &Path) -> PathBuf {
    path.strip_prefix(root).unwrap_or(path).to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a miniature workspace on disk and asserts the linter catches
    /// a seeded violation and passes a clean tree — the end-to-end contract
    /// `ci.sh` relies on.
    #[test]
    fn seeded_violation_yields_diagnostics_and_clean_tree_passes() {
        let base = std::env::temp_dir().join(format!("neo-xtask-lint-{}", std::process::id()));
        let src = base.join("crates/demo/src");
        fs::create_dir_all(&src).unwrap();
        fs::write(base.join("Cargo.toml"), "[workspace]\n").unwrap();
        fs::write(
            src.parent().unwrap().join("Cargo.toml"),
            "[package]\nname=\"demo\"\n",
        )
        .unwrap();

        let dirty = "#![forbid(unsafe_code)]\n#![deny(warnings)]\n\
                     pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        fs::write(src.join("lib.rs"), dirty).unwrap();
        let diags = lint_root(&base).unwrap();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "panic");
        assert_eq!(diags[0].line, 3);
        assert_eq!(diags[0].path, PathBuf::from("crates/demo/src/lib.rs"));

        let clean = "#![forbid(unsafe_code)]\n#![deny(warnings)]\n\
                     pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        fs::write(src.join("lib.rs"), clean).unwrap();
        assert!(lint_root(&base).unwrap().is_empty());

        fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn json_check_validates_exports_and_counts_phases() {
        let base = std::env::temp_dir().join(format!("neo-xtask-json-{}", std::process::id()));
        fs::create_dir_all(&base).unwrap();
        let good = base.join("summary.json");
        fs::write(
            &good,
            r#"{"counters": {}, "gauges": {}, "histograms": {}, "spans": [
                {"rank": 0, "iter": 0, "name": "iteration", "start_ns": 0, "end_ns": 5},
                {"rank": 0, "iter": 0, "name": "emb_lookup", "start_ns": 1, "end_ns": 2}
            ]}"#,
        )
        .unwrap();
        let trace = base.join("trace.json");
        fs::write(
            &trace,
            r#"{"displayTimeUnit": "ms", "traceEvents": [
                {"name": "iteration", "cat": "neo", "ph": "X", "ts": 0.0, "dur": 5.0,
                 "pid": 0, "tid": 0, "args": {"iter": 0}}
            ]}"#,
        )
        .unwrap();
        let bad = base.join("bad.json");
        fs::write(&bad, "{not json").unwrap();

        let arg = |p: &Path| p.to_string_lossy().into_owned();
        let ok =
            run_json_check(&["--min-phases".into(), "2".into(), arg(&good), arg(&trace)]).unwrap();
        assert_eq!(ok, 0);
        let too_few = run_json_check(&["--min-phases".into(), "8".into(), arg(&good)]).unwrap();
        assert_eq!(too_few, 1);
        let unparsable = run_json_check(&[arg(&bad)]).unwrap();
        assert_eq!(unparsable, 1);

        fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn hash_iteration_only_flagged_in_critical_crates() {
        let base = std::env::temp_dir().join(format!("neo-xtask-hash-{}", std::process::id()));
        for krate in ["sharding", "netsim"] {
            let src = base.join("crates").join(krate).join("src");
            fs::create_dir_all(&src).unwrap();
            fs::write(
                src.parent().unwrap().join("Cargo.toml"),
                format!("[package]\nname=\"{krate}\"\n"),
            )
            .unwrap();
            let body = "#![forbid(unsafe_code)]\n#![deny(warnings)]\n\
                        use std::collections::HashMap;\n\
                        pub fn f(m: &HashMap<u32, u32>) -> u32 { m.values().sum() }\n";
            fs::write(src.join("lib.rs"), body).unwrap();
        }
        fs::write(base.join("Cargo.toml"), "[workspace]\n").unwrap();
        let diags = lint_root(&base).unwrap();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "hash_iter");
        assert!(diags[0].path.starts_with("crates/sharding"));

        fs::remove_dir_all(&base).unwrap();
    }
}
