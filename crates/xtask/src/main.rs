//! `neo-xtask` — workspace invariant linter and telemetry-artifact checker.
//!
//! `cargo run -p neo-xtask -- lint` runs the `neo-lint` token-stream
//! analysis engine over every library source file in the workspace
//! (crates/*/src plus the root facade src/) and enforces the correctness
//! contract behind the paper's §4.1.2 reproducibility claim. Thirteen
//! rules (the full table lives in DESIGN.md and `neo_lint`'s crate docs):
//!
//! 1. **panic** — no `unwrap()`/`expect()`/`panic!`/`unreachable!`/`todo!`/
//!    `unimplemented!` in non-test library code unless the line carries a
//!    `// lint: allow(panic) — <reason>` annotation.
//! 2. **hash_iter** — no `HashMap`/`HashSet` iteration in the
//!    determinism-critical crates (collectives, sharding, embeddings,
//!    trainer); hash order varies run to run and breaks bitwise
//!    reproducibility.
//! 3. **crate_header** — `#![forbid(unsafe_code)]` and `#![deny(warnings)]`
//!    in every crate root.
//! 4. **props_cover** — every `pub fn` in `crates/collectives/src/group.rs`
//!    is named by a property test in `crates/collectives/tests/props.rs`.
//! 5. **span_balance** — telemetry span guards are bound rather than
//!    dropped on creation, and `begin_iteration`/`end_iteration` calls pair
//!    up within each file.
//! 6. **metric_names** — metric registrations name their metric via the
//!    constants/helpers in `crates/telemetry/src/metric.rs`, never an
//!    inline string literal.
//! 7. **lock_order** — every nested `Mutex`/`RwLock` acquisition (including
//!    one level of intra-crate call expansion) must respect a single global
//!    lock order per crate; an edge that closes a cycle in the
//!    lock-acquisition graph is a potential deadlock and is rejected unless
//!    waived with `// lint: allow(lock_order) — <reason>`.
//! 8. **lock_unwrap** — no `.lock().unwrap()` / `.read().expect(...)` /
//!    `PoisonError::into_inner` poison-propagation idioms outside
//!    `crates/sync`; code must use the `OrderedMutex`/`OrderedRwLock`
//!    wrappers, whose `lock()` recovers from poisoning by construction.
//! 9. **determinism** — no hidden run-varying inputs (`Instant::now`,
//!    `SystemTime`, thread ids, randomized hashing, host parallelism
//!    probes, order-sensitive folds over hash iteration) outside the
//!    measurement crates (telemetry, prof, bench, xtask) and the seeded
//!    chaos module.
//! 10. **comm_lane_blocking** — nothing blocking (channel `recv`, `sleep`,
//!     condvar waits, lock acquisition while holding a guard) reachable
//!     from the comm-lane worker in `collectives/nonblocking.rs`, one
//!     call-edge level deep; the lane exists to hide collective latency.
//! 11. **telemetry_taxonomy** — every `phase::X` / `metric::X` reference
//!     resolves against `neo-telemetry`'s taxonomy exports, and
//!     `.span(..)` never takes a raw string literal.
//! 12. **discarded_result** — no `let _ =` or bare-statement drops of a
//!     `Result` returned by the public collectives/trainer/dataio APIs.
//! 13. **stale_waiver** — every `// lint: allow(<rule>) — <reason>`
//!     annotation must name a known rule and actually suppress a finding;
//!     waivers that no longer fire are flagged so they cannot rot in place.
//!
//! Flags: `--json FILE` writes the machine-readable `neo-lint/1` report,
//! `--sarif FILE` writes SARIF 2.1.0 for editor/forge ingestion,
//! `--baseline FILE` diffs waived-finding counts against the committed
//! baseline (growth fails the gate even though the findings are waived),
//! and `--write-baseline FILE` regenerates that baseline after review.
//!
//! `cargo run --release -p neo-xtask -- interleave [--seeds N] [--seed S]
//! [--iters K]` runs the seeded schedule-perturbation harness: for each
//! seed it arms the `neo-sync` chaos layer, trains the overlapped (Fig. 9)
//! trainer at w ∈ {2, 4}, and asserts the result is bitwise identical to a
//! serial reference and free of deadlock (watchdog) and of runtime
//! lock-order violations. See `interleave.rs`.
//!
//! `cargo run -p neo-xtask -- json-check [--min-phases N] <files...>`
//! validates telemetry exports produced by `--telemetry`: each file must
//! parse as JSON; a metrics summary (object with a `spans` key) must carry
//! at least N distinct span phase names and no pair of spans that
//! partially overlaps on the same `(rank, lane)` — spans within one
//! execution lane come from scoped guards and may only nest, while the
//! overlapped trainer's posted collectives interleave with compute
//! legally because they run on a separate comm lane with its own
//! Chrome-trace tid. A Chrome trace (object with a `traceEvents` key)
//! must give every event a name and phase, every "X" event a timestamp
//! and duration, and must label the process (`process_name`) and every
//! thread — each rank's main lane and any comm lanes — with
//! `thread_name` metadata events.
//!
//! `cargo run -p neo-xtask -- bench [--label L] [--out FILE] [--quick]
//! [--best-of N] [--check BASELINE --tolerance PCT]` runs the pinned
//! benchmark suite from `neo-prof` (quickstart at 2/4/8 simulated ranks,
//! the exposed-comm case, the tiered-cache scan), writes the
//! schema-versioned `results/BENCH_<label>.json`, and — with `--check` —
//! fails (exit 1) when any baseline entry's throughput regressed more
//! than the tolerance. `--best-of N` repeats the suite and keeps each
//! entry's fastest run, suppressing scheduler noise on small hosts;
//! `--min-with FILE` folds a prior report in keeping each entry's
//! *slowest* throughput, which is how a conservative committed baseline
//! floor is accumulated over several invocations. Run it through a
//! release build: debug-mode timings are not comparable to a release
//! baseline.
//!
//! `shims/` is excluded from linting: those crates are offline stand-ins
//! for third-party dependencies and follow upstream APIs, not this repo's
//! conventions.
//!
//! Exit status: 0 when clean, 1 with diagnostics on violations, 2 on usage
//! or I/O errors.

#![forbid(unsafe_code)]
#![deny(warnings)]

mod interleave;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: neo-xtask lint [--root <dir>] [--json FILE] [--sarif FILE] \
       [--baseline FILE] [--write-baseline FILE] \
     | neo-xtask json-check [--min-phases N] <files...> \
     | neo-xtask bench [--label L] [--out FILE] [--quick] [--best-of N] \
       [--min-with FILE] [--check BASELINE] [--tolerance PCT] \
     | neo-xtask interleave [--seeds N] [--seed S] [--iters K]";

/// Dispatches to a subcommand; returns the number of problems found.
fn run(args: &[String]) -> Result<usize, String> {
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("json-check") => run_json_check(&args[1..]),
        Some("bench") => run_bench(&args[1..]),
        Some("interleave") => interleave::run_interleave(&args[1..]),
        _ => Err(USAGE.into()),
    }
}

/// Runs the `neo-lint` engine, prints diagnostics, writes the requested
/// report artifacts; returns the count of findings plus baseline
/// regressions.
fn run_lint(args: &[String]) -> Result<usize, String> {
    let mut root = None;
    let mut json_out: Option<PathBuf> = None;
    let mut sarif_out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut path_arg = |flag: &str| -> Result<PathBuf, String> {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{flag} requires a path argument"))
        };
        match a.as_str() {
            "--root" => root = Some(path_arg("--root")?),
            "--json" => json_out = Some(path_arg("--json")?),
            "--sarif" => sarif_out = Some(path_arg("--sarif")?),
            "--baseline" => baseline = Some(path_arg("--baseline")?),
            "--write-baseline" => write_baseline = Some(path_arg("--write-baseline")?),
            other => return Err(format!("unknown argument `{other}` ({USAGE})")),
        }
    }
    let root = match root {
        Some(r) => r,
        // compiled-in manifest dir: crates/xtask -> crates -> workspace root
        None => Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .ok_or("cannot locate workspace root")?
            .to_path_buf(),
    };

    let ws = neo_lint::Workspace::load(&root)?;
    let report = neo_lint::lint(&ws);
    let infos = neo_lint::rule_infos();
    for d in &report.diags {
        println!("{d}");
    }

    let write = |path: &Path, text: String, what: &str| -> Result<(), String> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
        fs::write(path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("neo-xtask lint: wrote {what} {}", path.display());
        Ok(())
    };
    if let Some(path) = &json_out {
        write(path, neo_lint::output::to_json(&report, &infos), "report")?;
    }
    if let Some(path) = &sarif_out {
        write(path, neo_lint::output::to_sarif(&report, &infos), "SARIF")?;
    }
    if let Some(path) = &write_baseline {
        write(path, neo_lint::output::baseline_json(&report), "baseline")?;
    }

    let mut baseline_problems = 0usize;
    if let Some(path) = &baseline {
        let text =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let diff = neo_lint::output::diff_baseline(&report, &text)?;
        for p in &diff.problems {
            println!("baseline: {p}");
        }
        for n in &diff.notes {
            println!("baseline note: {n}");
        }
        baseline_problems = diff.problems.len();
    }

    let waived: usize = report.waived.values().sum();
    if report.diags.is_empty() && baseline_problems == 0 {
        println!(
            "neo-xtask lint: ok ({} rules, {waived} waived finding(s))",
            infos.len()
        );
    } else {
        println!(
            "neo-xtask lint: {} violation(s), {baseline_problems} baseline regression(s)",
            report.diags.len()
        );
    }
    Ok(report.diags.len() + baseline_problems)
}

/// Validates telemetry export files; returns the number of bad files.
fn run_json_check(args: &[String]) -> Result<usize, String> {
    let mut min_phases = 0usize;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--min-phases" => {
                let v = it.next().ok_or("--min-phases requires a number")?;
                min_phases = v
                    .parse()
                    .map_err(|_| format!("invalid --min-phases value `{v}`"))?;
            }
            other => files.push(PathBuf::from(other)),
        }
    }
    if files.is_empty() {
        return Err(format!("json-check needs at least one file ({USAGE})"));
    }
    let mut problems = 0usize;
    for path in &files {
        let shown = path.display();
        let text = fs::read_to_string(path).map_err(|e| format!("reading {shown}: {e}"))?;
        let doc = match neo_telemetry::json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                println!("{shown}: invalid JSON: {e}");
                problems += 1;
                continue;
            }
        };
        if let Some(spans) = doc.get("spans").and_then(|s| s.as_array()) {
            let mut names: Vec<&str> = spans
                .iter()
                .filter_map(|s| s.get("name").and_then(|n| n.as_str()))
                .collect();
            let total = spans.len();
            names.sort_unstable();
            names.dedup();
            let tangled = tangled_spans(spans);
            if names.len() < min_phases {
                println!(
                    "{shown}: only {} distinct span phase(s), need at least {min_phases}",
                    names.len()
                );
                problems += 1;
            } else if tangled > 0 {
                println!(
                    "{shown}: {tangled} span pair(s) partially overlap on the same \
                     (rank, lane); spans may only nest within a lane (overlapped \
                     collectives belong on their own comm lane)"
                );
                problems += 1;
            } else {
                println!(
                    "{shown}: ok ({} distinct phases across {total} spans)",
                    names.len()
                );
            }
        } else if let Some(events) = doc.get("traceEvents").and_then(|e| e.as_array()) {
            let mut bad = Vec::new();
            let malformed = events
                .iter()
                .filter(|e| {
                    let ph = e.get("ph").and_then(|p| p.as_str());
                    e.get("name").and_then(|n| n.as_str()).is_none()
                        || ph.is_none()
                        || (ph == Some("X")
                            && (e.get("ts").and_then(|t| t.as_f64()).is_none()
                                || e.get("dur").and_then(|d| d.as_f64()).is_none()))
                })
                .count();
            if malformed > 0 {
                bad.push(format!(
                    "{malformed} trace event(s) missing name/ph (or ts/dur on \"X\" events)"
                ));
            }
            let meta_names: Vec<&str> = events
                .iter()
                .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
                .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
                .collect();
            if !meta_names.contains(&"process_name") {
                bad.push("no process_name metadata event".into());
            }
            let thread_tids: Vec<u64> = events
                .iter()
                .filter(|e| {
                    e.get("ph").and_then(|p| p.as_str()) == Some("M")
                        && e.get("name").and_then(|n| n.as_str()) == Some("thread_name")
                })
                .filter_map(|e| e.get("tid").and_then(|t| t.as_f64()))
                .map(|t| t as u64)
                .collect();
            let unlabeled = events
                .iter()
                .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
                .filter_map(|e| e.get("tid").and_then(|t| t.as_f64()))
                .map(|t| t as u64)
                .filter(|tid| !thread_tids.contains(tid))
                .count();
            if unlabeled > 0 {
                bad.push(format!(
                    "{unlabeled} span event(s) on ranks without a thread_name metadata event"
                ));
            }
            if bad.is_empty() {
                println!("{shown}: ok ({} trace events)", events.len());
            } else {
                for b in &bad {
                    println!("{shown}: {b}");
                }
                problems += 1;
            }
        } else {
            println!("{shown}: ok (parsed, no span payload)");
        }
    }
    Ok(problems)
}

/// Counts span pairs that *partially* overlap while sharing a `(rank,
/// lane)` — a malformed timeline. Spans on one execution lane come from
/// scoped guards, so they may nest but never cross; the overlapped
/// (Fig. 9) trainer's posted collectives interleave with compute
/// legally because they run on a separate comm lane (`lane > 0`, its
/// own Chrome-trace tid), which this check deliberately permits. Span
/// records without a `lane` key are lane 0 (pre-lane exports).
fn tangled_spans(spans: &[neo_telemetry::json::Json]) -> usize {
    type LaneIntervals = Vec<((u64, u64), Vec<(f64, f64)>)>;
    let mut by_lane: LaneIntervals = Vec::new();
    for s in spans {
        let rank = s.get("rank").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
        let lane = s.get("lane").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
        let (Some(start), Some(end)) = (
            s.get("start_ns").and_then(|v| v.as_f64()),
            s.get("end_ns").and_then(|v| v.as_f64()),
        ) else {
            continue;
        };
        let key = (rank, lane);
        match by_lane.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push((start, end)),
            None => by_lane.push((key, vec![(start, end)])),
        }
    }
    let mut tangled = 0usize;
    for (_, mut iv) in by_lane {
        // sort by start ascending, longest first on ties so parents precede
        iv.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)));
        let mut stack: Vec<f64> = Vec::new();
        for (start, end) in iv {
            while stack.last().is_some_and(|&e| e <= start) {
                stack.pop();
            }
            if stack.last().is_some_and(|&e| end > e) {
                tangled += 1; // starts inside an open span, ends after it
            }
            stack.push(end);
        }
    }
    tangled
}

/// Runs the pinned benchmark suite, writes `results/BENCH_<label>.json`,
/// and optionally gates against a baseline; returns the regression count.
fn run_bench(args: &[String]) -> Result<usize, String> {
    let mut label = String::from("local");
    let mut out: Option<PathBuf> = None;
    let mut quick = false;
    let mut best_of = 1usize;
    let mut min_with: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut tolerance = 10.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--label" => {
                label = it.next().ok_or("--label requires a value")?.clone();
            }
            "--out" => {
                out = Some(PathBuf::from(it.next().ok_or("--out requires a path")?));
            }
            "--quick" => quick = true,
            "--best-of" => {
                let v = it.next().ok_or("--best-of requires a count")?;
                best_of = v
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --best-of value `{v}`"))?
                    .max(1);
            }
            "--min-with" => {
                min_with = Some(PathBuf::from(
                    it.next().ok_or("--min-with requires a path")?,
                ));
            }
            "--check" => {
                baseline = Some(PathBuf::from(it.next().ok_or("--check requires a path")?));
            }
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance requires a percentage")?;
                tolerance = v
                    .parse()
                    .map_err(|_| format!("invalid --tolerance value `{v}`"))?;
            }
            other => return Err(format!("unknown argument `{other}` ({USAGE})")),
        }
    }

    let cfg = if quick {
        neo_prof::SuiteConfig::quick()
    } else {
        neo_prof::SuiteConfig::default()
    };
    // Best-of-N: keep each entry's fastest run. Wall-clock throughput only
    // moves *down* under transient load, so the max is the least noisy
    // estimate of what the code can do — essential on small/shared hosts.
    let mut report = neo_prof::run_suite(&label, &cfg)?;
    for round in 1..best_of {
        let next = neo_prof::run_suite(&label, &cfg)?;
        for e in next.entries {
            match report.entries.iter_mut().find(|b| b.name == e.name) {
                Some(best) if best.throughput_samples_per_sec < e.throughput_samples_per_sec => {
                    *best = e;
                }
                Some(_) => {}
                None => report.entries.push(e),
            }
        }
        println!("neo-xtask bench: completed round {}/{best_of}", round + 1);
    }
    // Baseline-floor mode: fold a prior report in, keeping each entry's
    // *minimum* throughput. Running the suite several times with
    // `--min-with <out> --out <out>` accumulates a conservative floor
    // that absorbs run-to-run scheduler noise when gated at a fixed
    // tolerance.
    if let Some(prior_path) = min_with {
        let prior_text = fs::read_to_string(&prior_path)
            .map_err(|e| format!("reading {}: {e}", prior_path.display()))?;
        let prior = neo_prof::BenchReport::parse(&prior_text)
            .map_err(|e| format!("parsing {}: {e}", prior_path.display()))?;
        for e in prior.entries {
            match report.entries.iter_mut().find(|b| b.name == e.name) {
                Some(cur) if e.throughput_samples_per_sec < cur.throughput_samples_per_sec => {
                    *cur = e;
                }
                Some(_) => {}
                None => report.entries.push(e),
            }
        }
    }

    let out_path = match out {
        Some(p) => p,
        None => {
            let results = Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .ok_or("cannot locate workspace root")?
                .join("results");
            fs::create_dir_all(&results)
                .map_err(|e| format!("creating {}: {e}", results.display()))?;
            results.join(format!("BENCH_{label}.json"))
        }
    };
    fs::write(&out_path, report.to_json())
        .map_err(|e| format!("writing {}: {e}", out_path.display()))?;
    println!("neo-xtask bench: wrote {}", out_path.display());
    for e in &report.entries {
        println!(
            "  {:<20} world={} {:>12.1} samples/s  exposed_comm={:.3}",
            e.name, e.world, e.throughput_samples_per_sec, e.exposed_comm_fraction
        );
    }

    let Some(base_path) = baseline else {
        return Ok(0);
    };
    let base_text = fs::read_to_string(&base_path)
        .map_err(|e| format!("reading {}: {e}", base_path.display()))?;
    let base = neo_prof::BenchReport::parse(&base_text)
        .map_err(|e| format!("parsing {}: {e}", base_path.display()))?;
    let problems = report.check_against(&base, tolerance);
    for p in &problems {
        println!("regression: {p}");
    }
    if problems.is_empty() {
        println!(
            "neo-xtask bench: ok (within {tolerance}% of {})",
            base_path.display()
        );
    } else {
        println!("neo-xtask bench: {} regression(s)", problems.len());
    }
    Ok(problems.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a miniature workspace on disk and asserts the CLI catches a
    /// seeded violation, passes a clean tree, and emits parseable JSON,
    /// SARIF, and baseline artifacts — the end-to-end contract `ci.sh`
    /// gate 3 relies on. Rule-by-rule coverage lives in
    /// `crates/lint/tests/fixtures.rs`.
    #[test]
    fn seeded_violation_yields_diagnostics_and_clean_tree_passes() {
        let base = std::env::temp_dir().join(format!("neo-xtask-lint-{}", std::process::id()));
        let src = base.join("crates/demo/src");
        fs::create_dir_all(&src).unwrap();
        fs::write(base.join("Cargo.toml"), "[workspace]\n").unwrap();
        fs::write(
            src.parent().unwrap().join("Cargo.toml"),
            "[package]\nname=\"demo\"\n",
        )
        .unwrap();
        let arg = |p: &Path| p.to_string_lossy().into_owned();
        let root_args = ["--root".to_owned(), arg(&base)];

        let dirty = "#![forbid(unsafe_code)]\n#![deny(warnings)]\n\
                     pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        fs::write(src.join("lib.rs"), dirty).unwrap();
        let json_path = base.join("out/lint.json");
        let sarif_path = base.join("out/lint.sarif");
        let n = run_lint(&[
            root_args[0].clone(),
            root_args[1].clone(),
            "--json".into(),
            arg(&json_path),
            "--sarif".into(),
            arg(&sarif_path),
        ])
        .unwrap();
        assert_eq!(n, 1, "exactly the seeded panic finding");
        let report = neo_telemetry::json::parse(&fs::read_to_string(&json_path).unwrap())
            .expect("JSON report parses");
        let findings = report.get("findings").and_then(|f| f.as_array()).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("rule").and_then(|r| r.as_str()),
            Some("panic")
        );
        let sarif = neo_telemetry::json::parse(&fs::read_to_string(&sarif_path).unwrap())
            .expect("SARIF parses");
        assert_eq!(sarif.get("version").and_then(|v| v.as_str()), Some("2.1.0"));

        let clean = "#![forbid(unsafe_code)]\n#![deny(warnings)]\n\
                     pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        fs::write(src.join("lib.rs"), clean).unwrap();
        let baseline_path = base.join("out/lint_baseline.json");
        let wrote = run_lint(&[
            root_args[0].clone(),
            root_args[1].clone(),
            "--write-baseline".into(),
            arg(&baseline_path),
        ])
        .unwrap();
        assert_eq!(wrote, 0);
        // a clean tree diffs clean against its own baseline
        let diffed = run_lint(&[
            root_args[0].clone(),
            root_args[1].clone(),
            "--baseline".into(),
            arg(&baseline_path),
        ])
        .unwrap();
        assert_eq!(diffed, 0);

        // a waiver the baseline does not allow fails the gate even though
        // the finding itself is suppressed
        let waived = "#![forbid(unsafe_code)]\n#![deny(warnings)]\n\
                      // lint: allow(panic) — demo waiver for the baseline gate\n\
                      pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        fs::write(src.join("lib.rs"), waived).unwrap();
        let regressed = run_lint(&[
            root_args[0].clone(),
            root_args[1].clone(),
            "--baseline".into(),
            arg(&baseline_path),
        ])
        .unwrap();
        assert_eq!(regressed, 1, "waived-count growth is a baseline regression");

        fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn json_check_validates_exports_and_counts_phases() {
        let base = std::env::temp_dir().join(format!("neo-xtask-json-{}", std::process::id()));
        fs::create_dir_all(&base).unwrap();
        let good = base.join("summary.json");
        fs::write(
            &good,
            r#"{"counters": {}, "gauges": {}, "histograms": {}, "spans": [
                {"rank": 0, "iter": 0, "name": "iteration", "start_ns": 0, "end_ns": 5},
                {"rank": 0, "iter": 0, "name": "emb_lookup", "start_ns": 1, "end_ns": 2}
            ]}"#,
        )
        .unwrap();
        let trace = base.join("trace.json");
        fs::write(
            &trace,
            r#"{"displayTimeUnit": "ms", "traceEvents": [
                {"name": "process_name", "ph": "M", "pid": 0,
                 "args": {"name": "neo-dlrm training"}},
                {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
                 "args": {"name": "rank 0"}},
                {"name": "iteration", "cat": "neo", "ph": "X", "ts": 0.0, "dur": 5.0,
                 "pid": 0, "tid": 0, "args": {"iter": 0}}
            ]}"#,
        )
        .unwrap();
        // span events present but no metadata at all: must be flagged
        let unlabeled = base.join("unlabeled.json");
        fs::write(
            &unlabeled,
            r#"{"traceEvents": [
                {"name": "iteration", "cat": "neo", "ph": "X", "ts": 0.0, "dur": 5.0,
                 "pid": 0, "tid": 0, "args": {"iter": 0}}
            ]}"#,
        )
        .unwrap();
        let bad = base.join("bad.json");
        fs::write(&bad, "{not json").unwrap();

        // comm-lane spans interleaving with main-lane compute: legal
        let lanes = base.join("lanes.json");
        fs::write(
            &lanes,
            r#"{"counters": {}, "gauges": {}, "histograms": {}, "spans": [
                {"rank": 0, "iter": 0, "name": "iteration", "lane": 0, "start_ns": 0, "end_ns": 50},
                {"rank": 0, "iter": 0, "name": "emb_lookup", "lane": 0, "start_ns": 0, "end_ns": 30},
                {"rank": 0, "iter": 0, "name": "input_a2a", "lane": 1, "start_ns": 10, "end_ns": 40}
            ]}"#,
        )
        .unwrap();
        // the same interleave on ONE lane: malformed
        let tangled = base.join("tangled.json");
        fs::write(
            &tangled,
            r#"{"counters": {}, "gauges": {}, "histograms": {}, "spans": [
                {"rank": 0, "iter": 0, "name": "emb_lookup", "lane": 0, "start_ns": 0, "end_ns": 30},
                {"rank": 0, "iter": 0, "name": "input_a2a", "lane": 0, "start_ns": 10, "end_ns": 40}
            ]}"#,
        )
        .unwrap();

        let arg = |p: &Path| p.to_string_lossy().into_owned();
        let ok =
            run_json_check(&["--min-phases".into(), "2".into(), arg(&good), arg(&trace)]).unwrap();
        assert_eq!(ok, 0);
        let lane_ok = run_json_check(&["--min-phases".into(), "3".into(), arg(&lanes)]).unwrap();
        assert_eq!(lane_ok, 0, "cross-lane interleaving is legal");
        let lane_bad = run_json_check(&[arg(&tangled)]).unwrap();
        assert_eq!(lane_bad, 1, "same-lane partial overlap is flagged");
        let too_few = run_json_check(&["--min-phases".into(), "8".into(), arg(&good)]).unwrap();
        assert_eq!(too_few, 1);
        let no_meta = run_json_check(&[arg(&unlabeled)]).unwrap();
        assert_eq!(no_meta, 1);
        let unparsable = run_json_check(&[arg(&bad)]).unwrap();
        assert_eq!(unparsable, 1);

        fs::remove_dir_all(&base).unwrap();
    }

    /// `bench --quick` writes a schema-valid report, passes against an
    /// honest baseline, and fails against one whose throughput is
    /// inflated beyond the tolerance — the acceptance contract for ci.sh
    /// gate 8.
    #[test]
    fn bench_quick_writes_report_and_gates_against_baseline() {
        let base = std::env::temp_dir().join(format!("neo-xtask-bench-{}", std::process::id()));
        fs::create_dir_all(&base).unwrap();
        let out = base.join("BENCH_test.json");
        let arg = |p: &Path| p.to_string_lossy().into_owned();

        let clean = run_bench(&[
            "--quick".into(),
            "--label".into(),
            "test".into(),
            "--out".into(),
            arg(&out),
        ])
        .unwrap();
        assert_eq!(clean, 0);
        let written = fs::read_to_string(&out).unwrap();
        let report = neo_prof::BenchReport::parse(&written).expect("schema-valid file");
        assert!(!report.entries.is_empty());

        // self-comparison is always within tolerance
        let self_check = run_bench(&[
            "--quick".into(),
            "--out".into(),
            arg(&base.join("BENCH_again.json")),
            "--check".into(),
            arg(&out),
            "--tolerance".into(),
            "99".into(),
        ])
        .unwrap();
        assert_eq!(self_check, 0);

        // inflate every baseline throughput 10x: every entry regresses
        let mut inflated = report.clone();
        for e in &mut inflated.entries {
            e.throughput_samples_per_sec *= 10.0;
        }
        let inflated_path = base.join("BENCH_inflated.json");
        fs::write(&inflated_path, inflated.to_json()).unwrap();
        let regressed = run_bench(&[
            "--quick".into(),
            "--out".into(),
            arg(&base.join("BENCH_third.json")),
            "--check".into(),
            arg(&inflated_path),
            "--tolerance".into(),
            "10".into(),
        ])
        .unwrap();
        assert_eq!(regressed, inflated.entries.len());

        // --min-with keeps the slower of (measured, prior) per entry: a
        // floor seeded with near-zero throughput survives a re-measure
        let mut floor = report.clone();
        for e in &mut floor.entries {
            e.throughput_samples_per_sec = 1e-3;
        }
        let floor_path = base.join("BENCH_floor.json");
        fs::write(&floor_path, floor.to_json()).unwrap();
        run_bench(&[
            "--quick".into(),
            "--min-with".into(),
            arg(&floor_path),
            "--out".into(),
            arg(&floor_path),
        ])
        .unwrap();
        let merged = neo_prof::BenchReport::parse(&fs::read_to_string(&floor_path).unwrap())
            .expect("floor file stays schema-valid");
        for e in &merged.entries {
            assert_eq!(e.throughput_samples_per_sec, 1e-3, "{}", e.name);
        }

        fs::remove_dir_all(&base).unwrap();
    }
}
