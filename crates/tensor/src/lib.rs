//! Dense-tensor substrate for the `neo-dlrm` workspace.
//!
//! The paper's dense compute (MLPs, feature interaction) runs on cuBLAS /
//! FBGEMM kernels. This crate provides the pure-Rust equivalent: a compact
//! row-major matrix type ([`Tensor2`]), a cache-blocked GEMM with the
//! transpose variants required by back-propagation ([`gemm`]), fully
//! differentiable MLP layers ([`mlp`]), and the software half-precision
//! types (FP16/BF16) used by reduced-precision embedding storage and
//! quantized collectives ([`half`]).
//!
//! # Example
//!
//! ```
//! use neo_tensor::{Tensor2, mlp::{Mlp, MlpConfig, Activation}};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let cfg = MlpConfig::new(8, &[16, 4], Activation::Relu);
//! let mut mlp = Mlp::new(&cfg, &mut rng);
//! let x = Tensor2::from_fn(32, 8, |i, j| (i + j) as f32 * 0.01);
//! let y = mlp.forward(&x);
//! assert_eq!(y.shape(), (32, 4));
//! ```

#![forbid(unsafe_code)]
#![deny(warnings)]
#![deny(missing_docs)]

pub mod gemm;
pub mod half;
pub mod init;
pub mod mlp;
pub mod optim;
pub mod sanitize;
mod tensor;

pub use crate::half::{Bf16, F16};
pub use crate::tensor::{ShapeError, Tensor2};

/// Convenience alias used across the workspace for fallible tensor ops.
pub type Result<T> = std::result::Result<T, ShapeError>;
