//! Deterministic weight initialization.
//!
//! All initializers take an explicit RNG so that training is bit-wise
//! reproducible across runs and across worker counts — a property the paper
//! calls out (§4.1.2) and that the integration tests assert.

use rand::Rng;

use crate::Tensor2;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Example
///
/// ```
/// use neo_tensor::init;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let w = init::xavier_uniform(64, 32, &mut rng);
/// assert_eq!(w.shape(), (64, 32));
/// ```
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor2 {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(fan_in, fan_out, -a, a, rng)
}

/// Uniform initialization `U(lo, hi)` for a `rows x cols` tensor.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor2 {
    let mut t = Tensor2::zeros(rows, cols);
    for v in t.as_mut_slice() {
        *v = rng.gen_range(lo..hi);
    }
    t
}

/// Embedding-table initialization matching the DLRM reference:
/// `U(-1/sqrt(num_rows), 1/sqrt(num_rows))`.
pub fn embedding_uniform(num_rows: usize, dim: usize, rng: &mut impl Rng) -> Tensor2 {
    let a = 1.0 / (num_rows.max(1) as f32).sqrt();
    uniform(num_rows, dim, -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let w = xavier_uniform(100, 50, &mut rng);
        let a = (6.0f32 / 150.0).sqrt();
        assert!(w.as_slice().iter().all(|&v| v > -a && v < a));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(9);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(9);
        assert_eq!(
            uniform(4, 4, -1.0, 1.0, &mut r1),
            uniform(4, 4, -1.0, 1.0, &mut r2)
        );
    }

    #[test]
    fn embedding_scale_shrinks_with_rows() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let w = embedding_uniform(10_000, 8, &mut rng);
        assert!(w.as_slice().iter().all(|&v| v.abs() <= 0.01));
    }
}
