//! Cache-blocked general matrix multiply and the transpose variants used by
//! MLP back-propagation.
//!
//! The original system delegates these to cuBLAS (`GemmEx`). The pure-Rust
//! kernels here use register-tiled micro-kernels over cache-sized blocks —
//! enough to keep the functional benchmarks honest while staying portable.

use crate::{ShapeError, Tensor2};

/// Row-block size for the outer loop (fits comfortably in L2).
const MC: usize = 64;
/// Depth-block size.
const KC: usize = 128;

/// `C = A (m x k) * B (k x n)`.
///
/// # Errors
///
/// Returns [`ShapeError`] if the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use neo_tensor::{Tensor2, gemm};
/// let a = Tensor2::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
/// let b = Tensor2::from_fn(3, 2, |i, j| (i * 2 + j) as f32);
/// let c = gemm::matmul(&a, &b)?;
/// assert_eq!(c[(0, 0)], 10.0);
/// # Ok::<(), neo_tensor::ShapeError>(())
/// ```
pub fn matmul(a: &Tensor2, b: &Tensor2) -> crate::Result<Tensor2> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new(format!(
            "matmul {}x{} * {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Tensor2::zeros(m, n);
    gemm_blocked(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, k, n);
    crate::sanitize::check_finite("matmul output", c.as_slice());
    Ok(c)
}

/// `C = A^T (k x m)^T=(m x k)... ` more precisely: given `A (k x m)` and
/// `B (k x n)`, computes `C (m x n) = A^T * B`.
///
/// Used for the weight gradient `dW = X^T * dY` in the backward pass.
///
/// # Errors
///
/// Returns [`ShapeError`] if the leading dimensions disagree.
pub fn matmul_at_b(a: &Tensor2, b: &Tensor2) -> crate::Result<Tensor2> {
    if a.rows() != b.rows() {
        return Err(ShapeError::new(format!(
            "matmul_at_b {}x{} , {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    let (k, m) = a.shape();
    let n = b.cols();
    let mut c = Tensor2::zeros(m, n);
    // C[i][j] = sum_p A[p][i] * B[p][j]; iterate p outermost for stride-1
    // access on both inputs, accumulating rank-1 updates into C.
    let (av, bv, cv) = (a.as_slice(), b.as_slice(), c.as_mut_slice());
    for p in 0..k {
        let arow = &av[p * m..(p + 1) * m];
        let brow = &bv[p * n..(p + 1) * n];
        for (i, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let crow = &mut cv[i * n..(i + 1) * n];
            for (cval, &bval) in crow.iter_mut().zip(brow) {
                *cval += aval * bval;
            }
        }
    }
    crate::sanitize::check_finite("matmul_at_b output", c.as_slice());
    Ok(c)
}

/// Given `A (m x k)` and `B (n x k)`, computes `C (m x n) = A * B^T`.
///
/// Used for the input gradient `dX = dY * W^T` (weights stored `out x in`
/// would be `W`, here we keep weights `in x out` so this handles the other
/// convention) and for the pairwise dot-product feature interaction
/// `X * X^T`.
///
/// # Errors
///
/// Returns [`ShapeError`] if the trailing dimensions disagree.
pub fn matmul_a_bt(a: &Tensor2, b: &Tensor2) -> crate::Result<Tensor2> {
    if a.cols() != b.cols() {
        return Err(ShapeError::new(format!(
            "matmul_a_bt {}x{} , {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    let (m, k) = a.shape();
    let n = b.rows();
    let mut c = Tensor2::zeros(m, n);
    let (av, bv, cv) = (a.as_slice(), b.as_slice(), c.as_mut_slice());
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let crow = &mut cv[i * n..(i + 1) * n];
        for j in 0..n {
            let brow = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            crow[j] = acc;
        }
    }
    crate::sanitize::check_finite("matmul_a_bt output", c.as_slice());
    Ok(c)
}

/// Number of floating-point operations a `m x k x n` GEMM performs
/// (multiply-add counted as two flops). Used by the perf model and the
/// criterion benchmarks to report achieved TF/s.
#[must_use]
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

/// Blocked inner kernel: `c (m x n) += a (m x k) * b (k x n)`, all row-major.
fn gemm_blocked(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for ic in (0..m).step_by(MC) {
        let mb = MC.min(m - ic);
        for pc in (0..k).step_by(KC) {
            let kb = KC.min(k - pc);
            for i in 0..mb {
                let arow = &a[(ic + i) * k + pc..(ic + i) * k + pc + kb];
                let crow = &mut c[(ic + i) * n..(ic + i) * n + n];
                // 4-way unrolled rank-1 accumulation over the depth block.
                let mut p = 0;
                while p + 4 <= kb {
                    let a0 = arow[p];
                    let a1 = arow[p + 1];
                    let a2 = arow[p + 2];
                    let a3 = arow[p + 3];
                    let b0 = &b[(pc + p) * n..(pc + p) * n + n];
                    let b1 = &b[(pc + p + 1) * n..(pc + p + 1) * n + n];
                    let b2 = &b[(pc + p + 2) * n..(pc + p + 2) * n + n];
                    let b3 = &b[(pc + p + 3) * n..(pc + p + 3) * n + n];
                    for j in 0..n {
                        crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                    }
                    p += 4;
                }
                while p < kb {
                    let aval = arow[p];
                    if aval != 0.0 {
                        let brow = &b[(pc + p) * n..(pc + p) * n + n];
                        for j in 0..n {
                            crow[j] += aval * brow[j];
                        }
                    }
                    p += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor2, b: &Tensor2) -> Tensor2 {
        let mut c = Tensor2::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a[(i, p)] * b[(p, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 33, 9), (70, 130, 65)] {
            let a = Tensor2::from_fn(m, k, |i, j| ((i * 7 + j * 3) % 11) as f32 - 5.0);
            let b = Tensor2::from_fn(k, n, |i, j| ((i * 5 + j * 2) % 13) as f32 - 6.0);
            let got = matmul(&a, &b).unwrap();
            let want = naive(&a, &b);
            assert!(got.max_abs_diff(&want).unwrap() < 1e-3, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = Tensor2::zeros(2, 3);
        let b = Tensor2::zeros(4, 2);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = Tensor2::from_fn(9, 4, |i, j| (i * 4 + j) as f32 * 0.1);
        let b = Tensor2::from_fn(9, 6, |i, j| (i + j) as f32 * 0.2 - 1.0);
        let got = matmul_at_b(&a, &b).unwrap();
        let want = matmul(&a.transposed(), &b).unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-4);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = Tensor2::from_fn(5, 7, |i, j| (i * 7 + j) as f32 * 0.05);
        let b = Tensor2::from_fn(3, 7, |i, j| (i + 2 * j) as f32 * 0.1 - 0.5);
        let got = matmul_a_bt(&a, &b).unwrap();
        let want = matmul(&a, &b.transposed()).unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-4);
    }

    #[test]
    fn shape_checks_on_transpose_variants() {
        assert!(matmul_at_b(&Tensor2::zeros(3, 2), &Tensor2::zeros(4, 5)).is_err());
        assert!(matmul_a_bt(&Tensor2::zeros(3, 2), &Tensor2::zeros(4, 5)).is_err());
    }

    #[test]
    fn flops_counts_multiply_add() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }
}
