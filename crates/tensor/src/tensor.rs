//! The row-major 2-D tensor type used throughout the workspace.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

use serde::{Deserialize, Serialize};

/// Error returned when tensor shapes are incompatible for an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    msg: String,
}

impl ShapeError {
    /// Creates a new shape error with the given description.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch: {}", self.msg)
    }
}

impl std::error::Error for ShapeError {}

/// A dense row-major matrix of `f32` values.
///
/// This is the workhorse dense type of the workspace: activations, MLP
/// weights, pooled embedding outputs and gradients are all `Tensor2`.
/// Storage is a flat `Vec<f32>` with row stride equal to the number of
/// columns, matching the layout cuBLAS sees in the original system.
///
/// # Example
///
/// ```
/// use neo_tensor::Tensor2;
/// let t = Tensor2::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
/// assert_eq!(t[(1, 2)], 5.0);
/// assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor2 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor2 {
    /// Creates a `rows x cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a tensor by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing buffer as a tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> crate::Result<Self> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(format!(
                "buffer of len {} cannot be viewed as {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns the transpose as a new tensor.
    pub fn transposed(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// `self += alpha * other` (axpy), the dense SGD primitive.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Self) -> crate::Result<()> {
        self.check_same_shape(other)?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scales every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Stacks `blocks` horizontally (all must share the row count).
    ///
    /// Used to assemble the interaction-layer input from the bottom-MLP
    /// output and the pooled embeddings.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the blocks disagree on row count or the
    /// input is empty.
    pub fn hcat(blocks: &[&Tensor2]) -> crate::Result<Self> {
        let first = blocks
            .first()
            .ok_or_else(|| ShapeError::new("hcat of zero blocks"))?;
        let rows = first.rows;
        if blocks.iter().any(|b| b.rows != rows) {
            return Err(ShapeError::new("hcat blocks disagree on row count"));
        }
        let cols: usize = blocks.iter().map(|b| b.cols).sum();
        let mut out = Self::zeros(rows, cols);
        for i in 0..rows {
            let mut off = 0;
            for b in blocks {
                out.row_mut(i)[off..off + b.cols].copy_from_slice(b.row(i));
                off += b.cols;
            }
        }
        Ok(out)
    }

    /// Splits the tensor into horizontal blocks of the given widths
    /// (the inverse of [`Tensor2::hcat`]).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the widths do not sum to `self.cols()`.
    pub fn hsplit(&self, widths: &[usize]) -> crate::Result<Vec<Tensor2>> {
        if widths.iter().sum::<usize>() != self.cols {
            return Err(ShapeError::new(format!(
                "hsplit widths sum to {} but tensor has {} cols",
                widths.iter().sum::<usize>(),
                self.cols
            )));
        }
        let mut out = Vec::with_capacity(widths.len());
        let mut off = 0;
        for &w in widths {
            let mut b = Self::zeros(self.rows, w);
            for i in 0..self.rows {
                b.row_mut(i).copy_from_slice(&self.row(i)[off..off + w]);
            }
            off += w;
            out.push(b);
        }
        Ok(out)
    }

    /// Copies rows `lo..hi` into a new tensor (a batch slice).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > self.rows()`.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Self {
        assert!(
            lo <= hi && hi <= self.rows,
            "row slice {lo}..{hi} out of range"
        );
        Self {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        }
    }

    /// Stacks `blocks` vertically (all must share the column count).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on column-count mismatch or empty input.
    pub fn vcat(blocks: &[&Tensor2]) -> crate::Result<Self> {
        let first = blocks
            .first()
            .ok_or_else(|| ShapeError::new("vcat of zero blocks"))?;
        let cols = first.cols;
        if blocks.iter().any(|b| b.cols != cols) {
            return Err(ShapeError::new("vcat blocks disagree on column count"));
        }
        let rows = blocks.iter().map(|b| b.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for b in blocks {
            data.extend_from_slice(&b.data);
        }
        Ok(Self { rows, cols, data })
    }

    /// Maximum absolute element-wise difference against `other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> crate::Result<f32> {
        self.check_same_shape(other)?;
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }

    fn check_same_shape(&self, other: &Self) -> crate::Result<()> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(format!(
                "{}x{} vs {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        Ok(())
    }
}

impl Default for Tensor2 {
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl fmt::Debug for Tensor2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor2({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for Tensor2 {
    type Output = f32;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Tensor2 {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Tensor2> for &Tensor2 {
    type Output = Tensor2;

    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn add(self, rhs: &Tensor2) -> Tensor2 {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        Tensor2 {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Tensor2> for &Tensor2 {
    type Output = Tensor2;

    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn sub(self, rhs: &Tensor2) -> Tensor2 {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        Tensor2 {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f32> for &Tensor2 {
    type Output = Tensor2;

    fn mul(self, rhs: f32) -> Tensor2 {
        self.map(|v| v * rhs)
    }
}

impl Mul<f32> for Tensor2 {
    type Output = Tensor2;

    fn mul(mut self, rhs: f32) -> Tensor2 {
        self.scale(rhs);
        self
    }
}

impl AddAssign<&Tensor2> for Tensor2 {
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn add_assign(&mut self, rhs: &Tensor2) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor2::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t.len(), 12);
        assert!(!t.is_empty());
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Tensor2::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Tensor2::from_vec(2, 2, vec![1.0; 5]).is_err());
    }

    #[test]
    fn indexing_row_major() {
        let t = Tensor2::from_fn(2, 3, |i, j| (i * 10 + j) as f32);
        assert_eq!(t[(0, 0)], 0.0);
        assert_eq!(t[(1, 2)], 12.0);
        assert_eq!(t.row(0), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor2::from_fn(3, 5, |i, j| (i * 5 + j) as f32);
        assert_eq!(t.transposed().transposed(), t);
        assert_eq!(t.transposed()[(4, 2)], t[(2, 4)]);
    }

    #[test]
    fn hcat_hsplit_roundtrip() {
        let a = Tensor2::from_fn(2, 3, |i, j| (i + j) as f32);
        let b = Tensor2::from_fn(2, 2, |i, j| (i * j) as f32 + 7.0);
        let cat = Tensor2::hcat(&[&a, &b]).unwrap();
        assert_eq!(cat.shape(), (2, 5));
        let parts = cat.hsplit(&[3, 2]).unwrap();
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn hcat_rejects_mismatched_rows() {
        let a = Tensor2::zeros(2, 3);
        let b = Tensor2::zeros(3, 3);
        assert!(Tensor2::hcat(&[&a, &b]).is_err());
    }

    #[test]
    fn vcat_stacks() {
        let a = Tensor2::full(1, 2, 1.0);
        let b = Tensor2::full(2, 2, 2.0);
        let v = Tensor2::vcat(&[&a, &b]).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(0), &[1.0, 1.0]);
        assert_eq!(v.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn axpy_adds_scaled() {
        let mut a = Tensor2::full(2, 2, 1.0);
        let b = Tensor2::full(2, 2, 3.0);
        a.axpy(2.0, &b).unwrap();
        assert!(a.as_slice().iter().all(|&v| v == 7.0));
        let c = Tensor2::zeros(1, 1);
        assert!(a.axpy(1.0, &c).is_err());
    }

    #[test]
    fn slice_rows_copies() {
        let t = Tensor2::from_fn(4, 2, |i, _| i as f32);
        let s = t.slice_rows(1, 3);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[1.0, 1.0]);
        assert_eq!(s.row(1), &[2.0, 2.0]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Tensor2::full(2, 2, 2.0);
        let b = Tensor2::full(2, 2, 5.0);
        assert_eq!((&a + &b).as_slice(), &[7.0; 4]);
        assert_eq!((&b - &a).as_slice(), &[3.0; 4]);
        assert_eq!((&a * 3.0).as_slice(), &[6.0; 4]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[7.0; 4]);
    }

    #[test]
    fn max_abs_diff_and_norms() {
        let a = Tensor2::from_vec(1, 3, vec![1.0, -2.0, 3.0]).unwrap();
        let b = Tensor2::from_vec(1, 3, vec![1.5, -2.0, 2.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 1.0);
        assert_eq!(a.sum(), 2.0);
        assert_eq!(a.norm_sq(), 14.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor2::zeros(0, 0);
        assert!(!format!("{t:?}").is_empty());
    }
}
