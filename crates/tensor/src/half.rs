//! Software half-precision types.
//!
//! The paper uses FP16 embedding-table storage (§5.3.2) and FP16/BF16
//! quantized collectives (§4.5, [Yang et al. 2020]). On CPU there is no
//! hardware half type, so we implement the two 16-bit formats as newtypes
//! over `u16` with correct conversion semantics:
//!
//! * [`F16`] — IEEE 754 binary16 (1 sign, 5 exponent, 10 mantissa bits),
//!   round-to-nearest-even plus an optional stochastic-rounding conversion
//!   used for embedding updates.
//! * [`Bf16`] — bfloat16 (truncated binary32), the format used for backward
//!   AlltoAll because its dynamic range matches FP32.

use std::fmt;

use serde::{Deserialize, Serialize};

/// IEEE binary16 value stored as raw bits.
///
/// # Example
///
/// ```
/// use neo_tensor::F16;
/// let h = F16::from_f32(1.5);
/// assert_eq!(h.to_f32(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct F16(u16);

/// bfloat16 value stored as raw bits.
///
/// # Example
///
/// ```
/// use neo_tensor::Bf16;
/// let b = Bf16::from_f32(3.0);
/// assert_eq!(b.to_f32(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Bf16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// Largest finite f16 value (65504).
    pub const MAX: F16 = F16(0x7bff);

    /// Converts from `f32` with round-to-nearest-even.
    #[must_use]
    pub fn from_f32(value: f32) -> Self {
        Self(f32_to_f16_bits(value))
    }

    /// Converts from `f32` with stochastic rounding, using `noise` drawn
    /// uniformly from `[0, 1)`. Stochastic rounding keeps low-magnitude
    /// gradient updates from being systematically lost when embedding
    /// tables are stored in FP16.
    #[must_use]
    pub fn from_f32_stochastic(value: f32, noise: f32) -> Self {
        if !value.is_finite() {
            return Self::from_f32(value);
        }
        let lo_bits = f32_to_f16_bits_truncate(value);
        let lo = f16_bits_to_f32(lo_bits);
        if lo == value {
            return Self(lo_bits);
        }
        let hi_bits = next_toward_inf(lo_bits, value.is_sign_negative());
        let hi = f16_bits_to_f32(hi_bits);
        let span = hi - lo;
        let frac = if span == 0.0 || !span.is_finite() {
            0.0
        } else {
            (value - lo) / span
        };
        if noise < frac.abs() {
            Self(hi_bits)
        } else {
            Self(lo_bits)
        }
    }

    /// Converts back to `f32` (exact).
    #[must_use]
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Raw bit pattern.
    #[must_use]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Builds a value from a raw bit pattern.
    #[must_use]
    pub fn from_bits(bits: u16) -> Self {
        Self(bits)
    }
}

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);

    /// Converts from `f32` with round-to-nearest-even on the truncated bits.
    #[must_use]
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        // round-to-nearest-even on bit 16
        let round_bit = (bits >> 15) & 1;
        let sticky = bits & 0x7fff;
        let mut hi = (bits >> 16) as u16;
        if round_bit == 1 && (sticky != 0x0000 || hi & 1 == 1) && !value.is_nan() {
            hi = hi.wrapping_add(1);
        }
        if value.is_nan() {
            // preserve NaN; force a quiet-NaN payload bit
            hi = ((bits >> 16) as u16) | 0x0040;
        }
        Self(hi)
    }

    /// Converts back to `f32` (exact).
    #[must_use]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Raw bit pattern.
    #[must_use]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Builds a value from a raw bit pattern.
    #[must_use]
    pub fn from_bits(bits: u16) -> Self {
        Self(bits)
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        Self::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

impl From<f32> for Bf16 {
    fn from(v: f32) -> Self {
        Self::from_f32(v)
    }
}

impl From<Bf16> for f32 {
    fn from(v: Bf16) -> Self {
        v.to_f32()
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Quantizes a slice of `f32` to FP16 bits (round-to-nearest-even).
pub fn quantize_f16(src: &[f32], dst: &mut Vec<u16>) {
    dst.clear();
    dst.extend(src.iter().map(|&v| f32_to_f16_bits(v)));
}

/// Dequantizes FP16 bits back to `f32`.
pub fn dequantize_f16(src: &[u16], dst: &mut Vec<f32>) {
    dst.clear();
    dst.extend(src.iter().map(|&b| f16_bits_to_f32(b)));
}

/// Quantizes a slice of `f32` to BF16 bits.
pub fn quantize_bf16(src: &[f32], dst: &mut Vec<u16>) {
    dst.clear();
    dst.extend(src.iter().map(|&v| Bf16::from_f32(v).to_bits()));
}

/// Dequantizes BF16 bits back to `f32`.
pub fn dequantize_bf16(src: &[u16], dst: &mut Vec<f32>) {
    dst.clear();
    dst.extend(src.iter().map(|&b| Bf16::from_bits(b).to_f32()));
}

fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits >> 15) as u32) << 31;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let mant = (bits & 0x3ff) as u32;
    let out = if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // subnormal: normalize
            let mut e = 127 - 15 + 1;
            let mut m = mant;
            while m & 0x400 == 0 {
                m <<= 1;
                e -= 1;
            }
            sign | ((e as u32) << 23) | ((m & 0x3ff) << 13)
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13)
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 31) as u16) << 15;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x7f_ffff;

    if exp == 0xff {
        // Inf / NaN
        return sign | 0x7c00 | if mant != 0 { 0x200 } else { 0 };
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow -> inf
    }
    if unbiased >= -14 {
        // normal range; round-to-nearest-even on bit 13
        let m = mant >> 13;
        let round = (mant >> 12) & 1;
        let sticky = mant & 0xfff;
        let mut h = sign | (((unbiased + 15) as u16) << 10) | m as u16;
        if round == 1 && (sticky != 0 || h & 1 == 1) {
            h = h.wrapping_add(1); // carries correctly into exponent
        }
        return h;
    }
    if unbiased < -25 {
        return sign; // underflow to zero
    }
    // subnormal
    let shift = (-14 - unbiased) as u32;
    let full = mant | 0x80_0000;
    let m = full >> (13 + shift);
    let rem = full & ((1 << (13 + shift)) - 1);
    let halfway = 1u32 << (12 + shift);
    let mut h = sign | m as u16;
    if rem > halfway || (rem == halfway && h & 1 == 1) {
        h = h.wrapping_add(1);
    }
    h
}

/// Truncating (round-toward-zero) f32 -> f16, used as the "low" endpoint for
/// stochastic rounding.
fn f32_to_f16_bits_truncate(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 31) as u16) << 15;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x7f_ffff;
    if exp == 0xff {
        return sign | 0x7c00 | if mant != 0 { 0x200 } else { 0 };
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7bff; // clamp to max finite when truncating
    }
    if unbiased >= -14 {
        return sign | (((unbiased + 15) as u16) << 10) | (mant >> 13) as u16;
    }
    if unbiased < -24 {
        return sign;
    }
    let shift = (-14 - unbiased) as u32;
    let full = mant | 0x80_0000;
    sign | (full >> (13 + shift)) as u16
}

/// Next representable f16 away from zero (toward +/- inf depending on sign).
fn next_toward_inf(bits: u16, negative: bool) -> u16 {
    let mag = bits & 0x7fff;
    let sign = bits & 0x8000;
    if mag >= 0x7bff {
        return bits; // already max finite; stay
    }
    let _ = negative;
    sign | (mag + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_exact_small_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 1.5, 2.0, -3.25, 1024.0] {
            assert_eq!(F16::from_f32(v).to_f32(), v, "{v}");
        }
    }

    #[test]
    fn f16_rounds_to_nearest() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16; RNE
        // picks the even mantissa (1.0).
        let v = 1.0 + f32::powi(2.0, -11);
        assert_eq!(F16::from_f32(v).to_f32(), 1.0);
        // slightly above halfway rounds up
        let v = 1.0 + f32::powi(2.0, -11) + f32::powi(2.0, -13);
        assert_eq!(F16::from_f32(v).to_f32(), 1.0 + f32::powi(2.0, -10));
    }

    #[test]
    fn f16_overflow_and_subnormal() {
        assert!(F16::from_f32(1e6).to_f32().is_infinite());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
        let tiny = f32::powi(2.0, -20);
        let rt = F16::from_f32(tiny).to_f32();
        assert!((rt - tiny).abs() < f32::powi(2.0, -24));
        assert_eq!(F16::from_f32(1e-30).to_f32(), 0.0);
    }

    #[test]
    fn f16_max_constant() {
        assert_eq!(F16::MAX.to_f32(), 65504.0);
    }

    #[test]
    fn bf16_truncation_and_rounding() {
        assert_eq!(Bf16::from_f32(1.0).to_f32(), 1.0);
        assert_eq!(Bf16::from_f32(-2.5).to_f32(), -2.5);
        // bf16 keeps f32 range
        assert!(Bf16::from_f32(1e38).to_f32().is_finite());
        assert!(Bf16::from_f32(f32::NAN).to_f32().is_nan());
        // relative error bounded by 2^-8
        for v in [3.3321f32, 1e-5, 123456.0, -0.001] {
            let r = Bf16::from_f32(v).to_f32();
            assert!(((r - v) / v).abs() < 1.0 / 128.0, "{v} -> {r}");
        }
    }

    #[test]
    fn stochastic_rounding_is_bracketed() {
        let v = 1.0 + 3.0 * f32::powi(2.0, -12); // not representable in f16
        let lo = F16::from_f32_stochastic(v, 0.999).to_f32();
        let hi = F16::from_f32_stochastic(v, 0.0001).to_f32();
        assert!(lo <= v && v <= hi, "{lo} {v} {hi}");
        assert!(hi > lo);
        // exact values never move
        assert_eq!(F16::from_f32_stochastic(1.5, 0.7).to_f32(), 1.5);
    }

    #[test]
    fn stochastic_rounding_unbiased_in_expectation() {
        let v = 1.0 + 3.0 * f32::powi(2.0, -12);
        let n = 10_000;
        let mut acc = 0.0f64;
        for i in 0..n {
            let noise = (i as f32 + 0.5) / n as f32;
            acc += F16::from_f32_stochastic(v, noise).to_f32() as f64;
        }
        let mean = acc / n as f64;
        assert!((mean - v as f64).abs() < 1e-5, "mean {mean} vs {v}");
    }

    #[test]
    fn quantize_roundtrips() {
        let src = vec![0.0f32, 1.0, -2.5, 0.125, 100.0];
        let mut q = Vec::new();
        let mut d = Vec::new();
        quantize_f16(&src, &mut q);
        dequantize_f16(&q, &mut d);
        assert_eq!(d, src);
        quantize_bf16(&src, &mut q);
        dequantize_bf16(&q, &mut d);
        assert_eq!(d, src);
    }

    #[test]
    fn displays_value() {
        assert_eq!(F16::from_f32(1.5).to_string(), "1.5");
        assert_eq!(Bf16::from_f32(-2.0).to_string(), "-2");
    }
}
