//! Fully-connected (MLP) layers with explicit forward/backward passes.
//!
//! DLRMs contain a *bottom* MLP that embeds dense features and a *top* MLP
//! that scores the feature interactions (§2 of the paper). Both are plain
//! stacks of `Linear -> activation` layers; in the data-parallel dimension
//! their gradients are synchronized with AllReduce, which is why this module
//! exposes flat parameter/gradient views ([`Mlp::grads_flat`],
//! [`Mlp::set_grads_flat`]).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{gemm, init, ShapeError, Tensor2};

/// Element-wise nonlinearity applied after a linear layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)` — used by every hidden layer in the paper's MLP bench.
    Relu,
    /// Logistic sigmoid — used on the final CTR output.
    Sigmoid,
    /// No nonlinearity.
    Identity,
}

impl Activation {
    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *output* `y = f(x)`.
    fn grad_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Identity => 1.0,
        }
    }
}

/// One dense layer: `y = act(x W + b)`, with weights stored `in_dim x out_dim`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    w: Tensor2,
    b: Tensor2,
    act: Activation,
    dw: Tensor2,
    db: Tensor2,
    #[serde(skip)]
    cached_input: Option<Tensor2>,
    #[serde(skip)]
    cached_output: Option<Tensor2>,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, rng: &mut impl Rng) -> Self {
        Self {
            w: init::xavier_uniform(in_dim, out_dim, rng),
            b: Tensor2::zeros(1, out_dim),
            act,
            dw: Tensor2::zeros(in_dim, out_dim),
            db: Tensor2::zeros(1, out_dim),
            cached_input: None,
            cached_output: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass, caching activations for the subsequent backward call.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_dim()`.
    pub fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        let y = self.forward_inference(x);
        self.cached_input = Some(x.clone());
        self.cached_output = Some(y.clone());
        y
    }

    /// Forward pass without caching (no backward possible afterwards).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_dim()`.
    pub fn forward_inference(&self, x: &Tensor2) -> Tensor2 {
        crate::sanitize::check_shape("linear forward input", x.shape(), (x.rows(), self.in_dim()));
        crate::sanitize::check_finite("linear forward input", x.as_slice());
        // lint: allow(panic) — shape contract documented under # Panics
        let mut y = gemm::matmul(x, &self.w).expect("linear forward shape");
        for i in 0..y.rows() {
            let row = y.row_mut(i);
            for (v, &bias) in row.iter_mut().zip(self.b.row(0)) {
                *v = self.act.apply(*v + bias);
            }
        }
        crate::sanitize::check_finite("mlp activation output", y.as_slice());
        y
    }

    /// Backward pass: consumes the cached activations, accumulates `dw`/`db`
    /// and returns the gradient with respect to the input.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `forward` was not called first or `dy` has
    /// the wrong shape.
    pub fn backward(&mut self, dy: &Tensor2) -> crate::Result<Tensor2> {
        let x = self
            .cached_input
            .take()
            .ok_or_else(|| ShapeError::new("backward without forward"))?;
        let y = self
            .cached_output
            .take()
            .ok_or_else(|| ShapeError::new("backward without forward output"))?;
        if dy.shape() != y.shape() {
            return Err(ShapeError::new("dy shape mismatch in linear backward"));
        }
        // dz = dy * act'(y)
        let mut dz = dy.clone();
        for (d, &out) in dz.as_mut_slice().iter_mut().zip(y.as_slice()) {
            *d *= self.act.grad_from_output(out);
        }
        crate::sanitize::check_finite("mlp pre-activation gradient", dz.as_slice());
        // dW += X^T dz ; db += column sums of dz ; dX = dz W^T
        let dw = gemm::matmul_at_b(&x, &dz)?;
        self.dw += &dw;
        for i in 0..dz.rows() {
            for (acc, &g) in self.db.row_mut(0).iter_mut().zip(dz.row(i)) {
                *acc += g;
            }
        }
        gemm::matmul_a_bt(&dz, &self.w)
    }

    /// Applies an SGD step `w -= lr * dw` and clears the gradients.
    pub fn sgd_step(&mut self, lr: f32) {
        self.w.axpy(-lr, &self.dw).expect("dw shape"); // lint: allow(panic) — dw is allocated with w's shape
        self.b.axpy(-lr, &self.db).expect("db shape"); // lint: allow(panic) — db is allocated with b's shape
        crate::sanitize::check_finite("sgd-updated weights", self.w.as_slice());
        crate::sanitize::check_finite("sgd-updated bias", self.b.as_slice());
        self.zero_grads();
    }

    /// Clears accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.dw.map_inplace(|_| 0.0);
        self.db.map_inplace(|_| 0.0);
    }

    /// Number of trainable parameters (weights + bias).
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// Configuration of an MLP stack.
///
/// # Example
///
/// ```
/// use neo_tensor::mlp::{MlpConfig, Activation};
/// let cfg = MlpConfig::new(13, &[512, 256, 64], Activation::Relu);
/// assert_eq!(cfg.output_dim(), 64);
/// assert!(cfg.flops_per_sample() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Output width of each successive layer.
    pub layer_sizes: Vec<usize>,
    /// Activation for the hidden layers.
    pub hidden_activation: Activation,
    /// Activation for the final layer (defaults to the hidden activation).
    pub final_activation: Activation,
}

impl MlpConfig {
    /// Creates a config where every layer, including the last, uses `act`.
    pub fn new(input_dim: usize, layer_sizes: &[usize], act: Activation) -> Self {
        Self {
            input_dim,
            layer_sizes: layer_sizes.to_vec(),
            hidden_activation: act,
            final_activation: act,
        }
    }

    /// Sets a distinct final-layer activation (builder style).
    #[must_use]
    pub fn with_final_activation(mut self, act: Activation) -> Self {
        self.final_activation = act;
        self
    }

    /// Width of the final layer (or the input if there are no layers).
    pub fn output_dim(&self) -> usize {
        self.layer_sizes.last().copied().unwrap_or(self.input_dim)
    }

    /// Forward flops per sample (2·in·out per layer, matching
    /// [`gemm::gemm_flops`] with batch 1).
    pub fn flops_per_sample(&self) -> u64 {
        let mut flops = 0u64;
        let mut prev = self.input_dim as u64;
        for &w in &self.layer_sizes {
            flops += 2 * prev * w as u64;
            prev = w as u64;
        }
        flops
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> u64 {
        let mut n = 0u64;
        let mut prev = self.input_dim as u64;
        for &w in &self.layer_sizes {
            n += prev * w as u64 + w as u64;
            prev = w as u64;
        }
        n
    }
}

/// A stack of [`Linear`] layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds the MLP described by `cfg` with weights drawn from `rng`.
    pub fn new(cfg: &MlpConfig, rng: &mut impl Rng) -> Self {
        let mut layers = Vec::with_capacity(cfg.layer_sizes.len());
        let mut prev = cfg.input_dim;
        for (idx, &w) in cfg.layer_sizes.iter().enumerate() {
            let act = if idx + 1 == cfg.layer_sizes.len() {
                cfg.final_activation
            } else {
                cfg.hidden_activation
            };
            layers.push(Linear::new(prev, w, act, rng));
            prev = w;
        }
        Self { layers }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Forward pass with caching for backward.
    pub fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Forward pass without caching.
    pub fn forward_inference(&self, x: &Tensor2) -> Tensor2 {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward_inference(&h);
        }
        h
    }

    /// Backward pass; returns the gradient w.r.t. the original input.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `forward` was not called first.
    pub fn backward(&mut self, dy: &Tensor2) -> crate::Result<Tensor2> {
        let mut g = dy.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// SGD step on every layer; clears gradients.
    pub fn sgd_step(&mut self, lr: f32) {
        for layer in &mut self.layers {
            layer.sgd_step(lr);
        }
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Linear::num_params).sum()
    }

    /// Appends all gradients (layer order, weights then bias) to `out`.
    ///
    /// Together with [`Mlp::set_grads_flat`] this is the hook the
    /// data-parallel trainer uses to AllReduce MLP gradients.
    pub fn grads_flat(&self, out: &mut Vec<f32>) {
        for layer in &self.layers {
            out.extend_from_slice(layer.dw.as_slice());
            out.extend_from_slice(layer.db.as_slice());
        }
    }

    /// Overwrites all gradients from a flat buffer produced by
    /// [`Mlp::grads_flat`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `src` has the wrong length.
    pub fn set_grads_flat(&mut self, src: &[f32]) -> crate::Result<()> {
        if src.len() != self.num_params() {
            return Err(ShapeError::new(format!(
                "flat grads of len {} for mlp with {} params",
                src.len(),
                self.num_params()
            )));
        }
        let mut off = 0;
        for layer in &mut self.layers {
            let wlen = layer.dw.len();
            layer
                .dw
                .as_mut_slice()
                .copy_from_slice(&src[off..off + wlen]);
            off += wlen;
            let blen = layer.db.len();
            layer
                .db
                .as_mut_slice()
                .copy_from_slice(&src[off..off + blen]);
            off += blen;
        }
        Ok(())
    }

    /// Exclusive end offsets of each weight/bias slice within the flat
    /// parameter buffer — the segment boundaries layer-wise optimizers
    /// (LAMB) normalize over.
    pub fn param_segments(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.layers.len() * 2);
        let mut off = 0;
        for layer in &self.layers {
            off += layer.w.len();
            out.push(off);
            off += layer.b.len();
            out.push(off);
        }
        out
    }

    /// Applies one step of any [`crate::optim::DenseOptimizer`] to the
    /// MLP's parameters using its accumulated gradients, then clears the
    /// gradients.
    pub fn apply_optimizer(&mut self, opt: &mut dyn crate::optim::DenseOptimizer) {
        let mut params = Vec::with_capacity(self.num_params());
        let mut grads = Vec::with_capacity(self.num_params());
        self.params_flat(&mut params);
        self.grads_flat(&mut grads);
        let segments = self.param_segments();
        opt.step(&mut params, &grads, &segments);
        crate::sanitize::check_finite("optimizer-updated parameters", &params);
        // lint: allow(panic) — params was built from this MLP's own layout
        self.set_params_flat(&params).expect("own parameter count");
        self.zero_grads();
    }

    /// Appends all parameters (layer order, weights then bias) to `out`.
    pub fn params_flat(&self, out: &mut Vec<f32>) {
        for layer in &self.layers {
            out.extend_from_slice(layer.w.as_slice());
            out.extend_from_slice(layer.b.as_slice());
        }
    }

    /// Overwrites all parameters from a flat buffer produced by
    /// [`Mlp::params_flat`]. Used to broadcast initial replicas and by the
    /// parameter-server baseline.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `src` has the wrong length.
    pub fn set_params_flat(&mut self, src: &[f32]) -> crate::Result<()> {
        if src.len() != self.num_params() {
            return Err(ShapeError::new(format!(
                "flat params of len {} for mlp with {} params",
                src.len(),
                self.num_params()
            )));
        }
        let mut off = 0;
        for layer in &mut self.layers {
            let wlen = layer.w.len();
            layer
                .w
                .as_mut_slice()
                .copy_from_slice(&src[off..off + wlen]);
            off += wlen;
            let blen = layer.b.len();
            layer
                .b
                .as_mut_slice()
                .copy_from_slice(&src[off..off + blen]);
            off += blen;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1234)
    }

    #[test]
    fn forward_shapes() {
        let cfg = MlpConfig::new(6, &[10, 3], Activation::Relu);
        let mut mlp = Mlp::new(&cfg, &mut rng());
        let x = Tensor2::from_fn(5, 6, |i, j| (i + j) as f32 * 0.1);
        assert_eq!(mlp.forward(&x).shape(), (5, 3));
        assert_eq!(mlp.num_layers(), 2);
    }

    #[test]
    fn relu_clamps_negative() {
        let mut l = Linear::new(1, 1, Activation::Relu, &mut rng());
        // force negative output
        l.w.as_mut_slice()[0] = -10.0;
        let y = l.forward_inference(&Tensor2::full(1, 1, 1.0));
        assert_eq!(y[(0, 0)], 0.0);
    }

    #[test]
    fn sigmoid_in_unit_interval() {
        let cfg =
            MlpConfig::new(4, &[8, 1], Activation::Relu).with_final_activation(Activation::Sigmoid);
        let mlp = Mlp::new(&cfg, &mut rng());
        let x = Tensor2::from_fn(16, 4, |i, j| (i as f32 - 8.0) * (j as f32 + 1.0) * 0.05);
        let y = mlp.forward_inference(&x);
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn backward_requires_forward() {
        let cfg = MlpConfig::new(2, &[2], Activation::Identity);
        let mut mlp = Mlp::new(&cfg, &mut rng());
        assert!(mlp.backward(&Tensor2::zeros(1, 2)).is_err());
    }

    /// Finite-difference check of the full MLP gradient.
    #[test]
    fn gradients_match_finite_differences() {
        let cfg = MlpConfig::new(3, &[4, 2], Activation::Sigmoid);
        let mut mlp = Mlp::new(&cfg, &mut rng());
        let x = Tensor2::from_fn(2, 3, |i, j| 0.3 * (i as f32) - 0.2 * (j as f32) + 0.1);

        // loss = sum(y); dL/dy = ones
        let y = mlp.forward(&x);
        let dy = Tensor2::full(y.rows(), y.cols(), 1.0);
        let dx = mlp.backward(&dy).unwrap();

        let eps = 1e-3;
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let mut xp = x.clone();
                xp[(i, j)] += eps;
                let mut xm = x.clone();
                xm[(i, j)] -= eps;
                let fp = mlp.forward_inference(&xp).sum();
                let fm = mlp.forward_inference(&xm).sum();
                let fd = (fp - fm) / (2.0 * eps);
                assert!(
                    (fd - dx[(i, j)]).abs() < 1e-2,
                    "dx[{i},{j}]: fd {fd} vs analytic {}",
                    dx[(i, j)]
                );
            }
        }
    }

    /// Finite-difference check of a weight gradient via an SGD probe.
    #[test]
    fn weight_gradient_descends_loss() {
        let cfg = MlpConfig::new(4, &[6, 1], Activation::Relu)
            .with_final_activation(Activation::Identity);
        let mut mlp = Mlp::new(&cfg, &mut rng());
        let x = Tensor2::from_fn(8, 4, |i, j| ((i * 4 + j) % 5) as f32 * 0.2 - 0.4);
        let target = Tensor2::full(8, 1, 0.7);

        let loss = |m: &Mlp| {
            let y = m.forward_inference(&x);
            (&y - &target).norm_sq()
        };
        let before = loss(&mlp);
        for _ in 0..50 {
            let y = mlp.forward(&x);
            let dy = (&y - &target) * 2.0;
            mlp.backward(&dy).unwrap();
            mlp.sgd_step(0.01);
        }
        let after = loss(&mlp);
        assert!(after < before * 0.2, "loss {before} -> {after}");
    }

    #[test]
    fn flat_grads_roundtrip() {
        let cfg = MlpConfig::new(3, &[5, 2], Activation::Relu);
        let mut mlp = Mlp::new(&cfg, &mut rng());
        let x = Tensor2::full(4, 3, 0.5);
        let y = mlp.forward(&x);
        mlp.backward(&Tensor2::full(y.rows(), y.cols(), 1.0))
            .unwrap();

        let mut g = Vec::new();
        mlp.grads_flat(&mut g);
        assert_eq!(g.len(), mlp.num_params());
        let scaled: Vec<f32> = g.iter().map(|v| v * 0.5).collect();
        mlp.set_grads_flat(&scaled).unwrap();
        let mut g2 = Vec::new();
        mlp.grads_flat(&mut g2);
        assert_eq!(g2, scaled);
        assert!(mlp.set_grads_flat(&[0.0]).is_err());
    }

    #[test]
    fn flat_params_roundtrip() {
        let cfg = MlpConfig::new(2, &[3], Activation::Identity);
        let mut a = Mlp::new(&cfg, &mut rng());
        let mut b = Mlp::new(&cfg, &mut rand::rngs::StdRng::seed_from_u64(99));
        let mut p = Vec::new();
        a.params_flat(&mut p);
        b.set_params_flat(&p).unwrap();
        let x = Tensor2::full(2, 2, 0.3);
        assert_eq!(a.forward_inference(&x), b.forward_inference(&x));
        // also confirm a roundtrip through itself is identity
        let mut p2 = Vec::new();
        a.params_flat(&mut p2);
        a.set_params_flat(&p2).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn param_segments_partition_the_buffer() {
        let cfg = MlpConfig::new(3, &[5, 2], Activation::Relu);
        let mlp = Mlp::new(&cfg, &mut rng());
        let segs = mlp.param_segments();
        assert_eq!(segs, vec![15, 20, 30, 32]);
        assert_eq!(*segs.last().unwrap(), mlp.num_params());
    }

    #[test]
    fn apply_optimizer_matches_sgd_step() {
        let cfg = MlpConfig::new(4, &[6, 2], Activation::Relu);
        let mut a = Mlp::new(&cfg, &mut rng());
        let mut b = a.clone();
        let x = Tensor2::from_fn(8, 4, |i, j| (i + j) as f32 * 0.1 - 0.3);
        for m in [&mut a, &mut b] {
            let y = m.forward(&x);
            let dy = Tensor2::full(y.rows(), y.cols(), 0.5);
            m.backward(&dy).unwrap();
        }
        a.sgd_step(0.01);
        b.apply_optimizer(&mut crate::optim::DenseSgd::new(0.01));
        let mut pa = Vec::new();
        let mut pb = Vec::new();
        a.params_flat(&mut pa);
        b.params_flat(&mut pb);
        assert_eq!(pa, pb);
    }

    #[test]
    fn adam_on_mlp_descends() {
        let cfg = MlpConfig::new(4, &[8, 1], Activation::Relu)
            .with_final_activation(Activation::Identity);
        let mut mlp = Mlp::new(&cfg, &mut rng());
        let mut opt = crate::optim::DenseAdam::new(0.01, 1e-8, mlp.num_params());
        let x = Tensor2::from_fn(16, 4, |i, j| ((i * 4 + j) % 7) as f32 * 0.2 - 0.6);
        let target = Tensor2::full(16, 1, 0.3);
        let loss = |m: &Mlp| (&m.forward_inference(&x) - &target).norm_sq();
        let before = loss(&mlp);
        for _ in 0..100 {
            let y = mlp.forward(&x);
            let dy = (&y - &target) * 2.0;
            mlp.backward(&dy).unwrap();
            mlp.apply_optimizer(&mut opt);
        }
        assert!(loss(&mlp) < before * 0.1);
    }

    #[test]
    fn config_accounting() {
        let cfg = MlpConfig::new(10, &[20, 5], Activation::Relu);
        assert_eq!(cfg.output_dim(), 5);
        assert_eq!(cfg.flops_per_sample(), 2 * (10 * 20 + 20 * 5) as u64);
        assert_eq!(
            cfg.num_params(),
            (10 * 20 + 20) as u64 + (20 * 5 + 5) as u64
        );
        let mlp = Mlp::new(&cfg, &mut rng());
        assert_eq!(mlp.num_params() as u64, cfg.num_params());
    }
}
