//! Opt-in runtime numeric sanitizer (`--features sanitize`).
//!
//! Deterministic training (§4.1.2) makes numeric corruption reproducible —
//! but only if it is *noticed*. With the `sanitize` feature enabled, the
//! dense kernels, MLP layers and optimizers (and, via feature forwarding,
//! the embedding stack in `neo-embeddings`) verify after each step that
//! values are finite, shapes agree, and embedding indices are in range,
//! panicking at the first corrupted operation instead of silently training
//! on NaNs. Without the feature every function here compiles to an empty
//! body, so release builds pay nothing.
//!
//! Every sanitizer panic message starts with `sanitize:` so failures are
//! greppable and tests can assert on them.

/// Panics if any value is NaN or infinite, naming the first offender.
///
/// # Panics
///
/// With `--features sanitize`: panics when `values` contains a non-finite
/// element. Without the feature: never (empty body).
#[inline]
pub fn check_finite(context: &str, values: &[f32]) {
    #[cfg(feature = "sanitize")]
    if let Some((i, v)) = values.iter().enumerate().find(|(_, v)| !v.is_finite()) {
        // lint: allow(panic) — sanitizer is an opt-in debug facility
        panic!("sanitize: non-finite value {v} at position {i} in {context}");
    }
    #[cfg(not(feature = "sanitize"))]
    let _ = (context, values);
}

/// Panics if `got != want`, for shape contracts the type system cannot see.
///
/// # Panics
///
/// With `--features sanitize`: panics when the shapes differ. Without the
/// feature: never (empty body).
#[inline]
pub fn check_shape(context: &str, got: (usize, usize), want: (usize, usize)) {
    #[cfg(feature = "sanitize")]
    if got != want {
        // lint: allow(panic) — sanitizer is an opt-in debug facility
        panic!("sanitize: shape {got:?} where {want:?} expected in {context}");
    }
    #[cfg(not(feature = "sanitize"))]
    let _ = (context, got, want);
}

/// Panics if `index >= bound` — the embedding-row bounds check.
///
/// # Panics
///
/// With `--features sanitize`: panics when `index` is out of range.
/// Without the feature: never (empty body).
#[inline]
pub fn check_index(context: &str, index: u64, bound: u64) {
    #[cfg(feature = "sanitize")]
    if index >= bound {
        // lint: allow(panic) — sanitizer is an opt-in debug facility
        panic!("sanitize: index {index} out of range for {bound} rows in {context}");
    }
    #[cfg(not(feature = "sanitize"))]
    let _ = (context, index, bound);
}

/// [`check_index`] over a batch of indices, naming the first offender.
///
/// # Panics
///
/// With `--features sanitize`: panics when any index is out of range.
/// Without the feature: never (empty body).
#[inline]
pub fn check_indices(context: &str, indices: &[u64], bound: u64) {
    #[cfg(feature = "sanitize")]
    if let Some((i, &idx)) = indices.iter().enumerate().find(|(_, &idx)| idx >= bound) {
        // lint: allow(panic) — sanitizer is an opt-in debug facility
        panic!("sanitize: index {idx} (position {i}) out of range for {bound} rows in {context}");
    }
    #[cfg(not(feature = "sanitize"))]
    let _ = (context, indices, bound);
}

/// Whether the sanitizer is compiled in — lets callers and tests branch on
/// the build configuration without `cfg` gymnastics.
#[must_use]
pub fn enabled() -> bool {
    cfg!(feature = "sanitize")
}

#[cfg(test)]
mod tests {
    use super::*;

    // These run in both configurations: without the feature every check is
    // a no-op; with it, the passing cases below must still not fire.
    #[test]
    fn passing_inputs_never_panic() {
        check_finite("test", &[0.0, -1.5, f32::MAX]);
        check_shape("test", (2, 3), (2, 3));
        check_index("test", 7, 8);
        check_indices("test", &[0, 3, 7], 8);
        assert_eq!(enabled(), cfg!(feature = "sanitize"));
    }

    #[cfg(feature = "sanitize")]
    mod armed {
        use super::*;

        #[test]
        #[should_panic(expected = "sanitize: non-finite")]
        fn nan_is_caught() {
            check_finite("test", &[1.0, f32::NAN]);
        }

        #[test]
        #[should_panic(expected = "sanitize: shape")]
        fn shape_mismatch_is_caught() {
            check_shape("test", (2, 3), (3, 2));
        }

        #[test]
        #[should_panic(expected = "sanitize: index")]
        fn oob_index_is_caught() {
            check_indices("test", &[0, 99], 8);
        }
    }

    #[cfg(not(feature = "sanitize"))]
    #[test]
    fn checks_are_noops_without_the_feature() {
        check_finite("test", &[f32::NAN, f32::INFINITY]);
        check_shape("test", (1, 1), (9, 9));
        check_index("test", 99, 8);
        check_indices("test", &[u64::MAX], 1);
        assert!(!enabled());
    }
}
