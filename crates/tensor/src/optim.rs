//! Dense optimizers for the data-parallel MLP parameters.
//!
//! §4.1.2 calls out AdaGrad, LAMB and Adam as the advanced optimizers the
//! system must support with fully deterministic updates. The sparse
//! (embedding) versions live in `neo-embeddings`; these are their dense
//! counterparts, operating on flat parameter/gradient buffers the trainer
//! obtains from [`crate::mlp::Mlp::params_flat`].
//!
//! LAMB normalizes its update *per layer* (trust ratio), so every
//! optimizer takes the parameter buffer's segment boundaries; SGD/AdaGrad/
//! Adam simply ignore them.

/// A deterministic dense optimizer over a flat parameter buffer.
pub trait DenseOptimizer: Send {
    /// Applies one update. `segments` are the exclusive end offsets of each
    /// layer's slice within the buffers (e.g. `[w0, w0+b0, ...]`); the last
    /// must equal `params.len()`.
    ///
    /// # Panics
    ///
    /// Implementations panic if buffer lengths disagree with each other,
    /// with the optimizer's state, or with `segments`.
    fn step(&mut self, params: &mut [f32], grads: &[f32], segments: &[usize]);

    /// Bytes of optimizer state.
    fn state_bytes(&self) -> u64;

    /// Optimizer name for reports.
    fn name(&self) -> &'static str;

    /// Updates the learning rate (for warmup/decay schedules).
    fn set_lr(&mut self, lr: f32);
}

fn check(params: &[f32], grads: &[f32], segments: &[usize]) {
    assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
    crate::sanitize::check_finite("dense optimizer gradient", grads);
    assert_eq!(
        segments.last().copied().unwrap_or(0),
        params.len(),
        "segments must cover the whole buffer"
    );
    debug_assert!(
        segments.windows(2).all(|w| w[0] < w[1]),
        "segments must increase"
    );
}

/// Plain SGD: `p -= lr * g`.
#[derive(Debug, Clone)]
pub struct DenseSgd {
    lr: f32,
}

impl DenseSgd {
    /// Creates SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }
}

impl DenseOptimizer for DenseSgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32], segments: &[usize]) {
        check(params, grads, segments);
        for (p, &g) in params.iter_mut().zip(grads) {
            *p -= self.lr * g;
        }
        crate::sanitize::check_finite(self.name(), params);
    }

    fn state_bytes(&self) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "sgd"
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Dense AdaGrad: `m += g^2; p -= lr * g / (sqrt(m) + eps)`.
#[derive(Debug, Clone)]
pub struct DenseAdagrad {
    lr: f32,
    eps: f32,
    moment: Vec<f32>,
}

impl DenseAdagrad {
    /// Creates AdaGrad state for `num_params` parameters.
    pub fn new(lr: f32, eps: f32, num_params: usize) -> Self {
        Self {
            lr,
            eps,
            moment: vec![0.0; num_params],
        }
    }
}

impl DenseOptimizer for DenseAdagrad {
    fn step(&mut self, params: &mut [f32], grads: &[f32], segments: &[usize]) {
        check(params, grads, segments);
        assert_eq!(params.len(), self.moment.len(), "adagrad state size");
        for ((p, &g), m) in params.iter_mut().zip(grads).zip(&mut self.moment) {
            *m += g * g;
            *p -= self.lr * g / (m.sqrt() + self.eps);
        }
        crate::sanitize::check_finite(self.name(), params);
    }

    fn state_bytes(&self) -> u64 {
        self.moment.len() as u64 * 4
    }

    fn name(&self) -> &'static str {
        "adagrad"
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Dense Adam with bias correction.
#[derive(Debug, Clone)]
pub struct DenseAdam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u32,
}

impl DenseAdam {
    /// Creates Adam state with the standard `beta1=0.9`, `beta2=0.999`.
    pub fn new(lr: f32, eps: f32, num_params: usize) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps,
            m: vec![0.0; num_params],
            v: vec![0.0; num_params],
            t: 0,
        }
    }

    fn adam_update(&mut self, grads: &[f32], out: &mut Vec<f32>) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        out.clear();
        for ((mi, vi), &g) in self.m.iter_mut().zip(self.v.iter_mut()).zip(grads) {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let mhat = *mi / bc1;
            let vhat = *vi / bc2;
            out.push(mhat / (vhat.sqrt() + self.eps));
        }
    }
}

impl DenseOptimizer for DenseAdam {
    fn step(&mut self, params: &mut [f32], grads: &[f32], segments: &[usize]) {
        check(params, grads, segments);
        assert_eq!(params.len(), self.m.len(), "adam state size");
        let mut update = Vec::new();
        self.adam_update(grads, &mut update);
        for (p, u) in params.iter_mut().zip(&update) {
            *p -= self.lr * u;
        }
        crate::sanitize::check_finite(self.name(), params);
    }

    fn state_bytes(&self) -> u64 {
        (self.m.len() + self.v.len()) as u64 * 4
    }

    fn name(&self) -> &'static str {
        "adam"
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// LAMB ([You et al. 2019], cited for large-batch DLRM training): an Adam
/// update rescaled per layer by the trust ratio `||p|| / ||u||`.
#[derive(Debug, Clone)]
pub struct DenseLamb {
    inner: DenseAdam,
    lr: f32,
    weight_decay: f32,
}

impl DenseLamb {
    /// Creates LAMB state (Adam moments + per-layer trust scaling).
    pub fn new(lr: f32, eps: f32, weight_decay: f32, num_params: usize) -> Self {
        Self {
            inner: DenseAdam::new(1.0, eps, num_params),
            lr,
            weight_decay,
        }
    }
}

impl DenseOptimizer for DenseLamb {
    fn step(&mut self, params: &mut [f32], grads: &[f32], segments: &[usize]) {
        check(params, grads, segments);
        assert_eq!(params.len(), self.inner.m.len(), "lamb state size");
        let mut update = Vec::new();
        self.inner.adam_update(grads, &mut update);
        // add decoupled weight decay to the update direction
        if self.weight_decay != 0.0 {
            for (u, &p) in update.iter_mut().zip(params.iter()) {
                *u += self.weight_decay * p;
            }
        }
        let mut start = 0;
        for &end in segments {
            let p_norm: f32 = params[start..end].iter().map(|x| x * x).sum::<f32>().sqrt();
            let u_norm: f32 = update[start..end].iter().map(|x| x * x).sum::<f32>().sqrt();
            let trust = if p_norm > 0.0 && u_norm > 0.0 {
                p_norm / u_norm
            } else {
                1.0
            };
            for (p, u) in params[start..end].iter_mut().zip(&update[start..end]) {
                *p -= self.lr * trust * u;
            }
            start = end;
        }
        crate::sanitize::check_finite(self.name(), params);
    }

    fn state_bytes(&self) -> u64 {
        self.inner.state_bytes()
    }

    fn name(&self) -> &'static str {
        "lamb"
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descends(opt: &mut dyn DenseOptimizer, steps: usize) -> f32 {
        // minimize sum((p - 1)^2) from p = 0
        let mut params = vec![0.0f32; 6];
        let segments = [4usize, 6];
        for _ in 0..steps {
            let grads: Vec<f32> = params.iter().map(|p| 2.0 * (p - 1.0)).collect();
            opt.step(&mut params, &grads, &segments);
        }
        params.iter().map(|p| (p - 1.0) * (p - 1.0)).sum()
    }

    #[test]
    fn all_optimizers_descend() {
        assert!(quadratic_descends(&mut DenseSgd::new(0.1), 50) < 1e-4);
        assert!(quadratic_descends(&mut DenseAdagrad::new(0.5, 1e-8, 6), 200) < 1e-2);
        assert!(quadratic_descends(&mut DenseAdam::new(0.05, 1e-8, 6), 300) < 1e-2);
        assert!(quadratic_descends(&mut DenseLamb::new(0.05, 1e-8, 0.0, 6), 300) < 1e-2);
    }

    #[test]
    fn sgd_matches_manual() {
        let mut opt = DenseSgd::new(0.5);
        let mut p = vec![1.0f32, 2.0];
        opt.step(&mut p, &[0.2, -0.4], &[2]);
        assert_eq!(p, vec![0.9, 2.2]);
    }

    #[test]
    fn adagrad_first_step_is_lr_sign() {
        let mut opt = DenseAdagrad::new(0.1, 0.0, 2);
        let mut p = vec![0.0f32; 2];
        opt.step(&mut p, &[3.0, -7.0], &[2]);
        // g / sqrt(g^2) = sign(g)
        assert!((p[0] + 0.1).abs() < 1e-6);
        assert!((p[1] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn adam_first_step_is_lr_sign() {
        let mut opt = DenseAdam::new(0.01, 1e-12, 2);
        let mut p = vec![0.0f32; 2];
        opt.step(&mut p, &[5.0, -0.001], &[2]);
        assert!((p[0] + 0.01).abs() < 1e-5, "{}", p[0]);
        assert!((p[1] - 0.01).abs() < 1e-5, "{}", p[1]);
    }

    #[test]
    fn lamb_trust_ratio_scales_per_segment() {
        // segment 0 has big params (trust ratio amplifies), segment 1 small
        let mut opt = DenseLamb::new(0.1, 1e-12, 0.0, 4);
        let mut p = vec![10.0f32, 10.0, 0.01, 0.01];
        let before = p.clone();
        opt.step(&mut p, &[1.0, 1.0, 1.0, 1.0], &[2, 4]);
        let step0 = (before[0] - p[0]).abs();
        let step1 = (before[2] - p[2]).abs();
        assert!(
            step0 > 50.0 * step1,
            "layer-wise scaling: {step0} vs {step1}"
        );
    }

    #[test]
    fn lamb_weight_decay_pulls_toward_zero() {
        let mut opt = DenseLamb::new(0.1, 1e-8, 0.1, 2);
        let mut p = vec![5.0f32, -5.0];
        for _ in 0..200 {
            opt.step(&mut p, &[0.0, 0.0], &[2]);
        }
        assert!(p[0].abs() < 5.0 && p[1].abs() < 5.0);
    }

    #[test]
    fn state_sizes() {
        assert_eq!(DenseSgd::new(0.1).state_bytes(), 0);
        assert_eq!(DenseAdagrad::new(0.1, 0.0, 10).state_bytes(), 40);
        assert_eq!(DenseAdam::new(0.1, 0.0, 10).state_bytes(), 80);
        assert_eq!(DenseLamb::new(0.1, 0.0, 0.0, 10).state_bytes(), 80);
        assert_eq!(DenseLamb::new(0.1, 0.0, 0.0, 10).name(), "lamb");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn shape_checked() {
        DenseSgd::new(0.1).step(&mut [0.0], &[0.0, 0.0], &[1]);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut opt = DenseAdam::new(0.01, 1e-8, 4);
            let mut p = vec![0.5f32; 4];
            for k in 0..50 {
                let g: Vec<f32> = p.iter().map(|x| (x * k as f32).sin() * 0.1).collect();
                opt.step(&mut p, &g, &[4]);
            }
            p
        };
        assert_eq!(run(), run());
    }
}
