//! Property-based tests for the dense substrate.

use neo_tensor::{gemm, Tensor2, F16};
use proptest::prelude::*;

fn tensor_strategy(max: usize) -> impl Strategy<Value = Tensor2> {
    (1..=max, 1..=max).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Tensor2::from_vec(r, c, v).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A B)^T == B^T A^T
    #[test]
    fn matmul_transpose_identity(
        a in tensor_strategy(12),
        cols in 1usize..12,
    ) {
        let b = Tensor2::from_fn(a.cols(), cols, |i, j| ((i * 13 + j * 7) % 9) as f32 - 4.0);
        let left = gemm::matmul(&a, &b).unwrap().transposed();
        let right = gemm::matmul(&b.transposed(), &a.transposed()).unwrap();
        prop_assert!(left.max_abs_diff(&right).unwrap() < 1e-3);
    }

    /// A * I == A
    #[test]
    fn identity_is_neutral(a in tensor_strategy(10)) {
        let eye = Tensor2::from_fn(a.cols(), a.cols(), |i, j| f32::from(i == j));
        let prod = gemm::matmul(&a, &eye).unwrap();
        prop_assert!(prod.max_abs_diff(&a).unwrap() < 1e-5);
    }

    /// the specialized transpose kernels agree with explicit transposition
    #[test]
    fn transpose_kernels_agree(a in tensor_strategy(10), n in 1usize..10) {
        let b = Tensor2::from_fn(a.rows(), n, |i, j| (i as f32 - j as f32) * 0.25);
        let at_b = gemm::matmul_at_b(&a, &b).unwrap();
        let explicit = gemm::matmul(&a.transposed(), &b).unwrap();
        prop_assert!(at_b.max_abs_diff(&explicit).unwrap() < 1e-3);

        let c = Tensor2::from_fn(n, a.cols(), |i, j| ((i + 2 * j) % 5) as f32 * 0.3);
        let a_ct = gemm::matmul_a_bt(&a, &c).unwrap();
        let explicit2 = gemm::matmul(&a, &c.transposed()).unwrap();
        prop_assert!(a_ct.max_abs_diff(&explicit2).unwrap() < 1e-3);
    }

    /// hcat/hsplit round-trips for arbitrary block widths
    #[test]
    fn hcat_hsplit_roundtrip(
        rows in 1usize..8,
        widths in proptest::collection::vec(1usize..6, 1..5),
    ) {
        let blocks: Vec<Tensor2> = widths
            .iter()
            .enumerate()
            .map(|(k, &w)| Tensor2::from_fn(rows, w, |i, j| (k * 100 + i * 10 + j) as f32))
            .collect();
        let refs: Vec<&Tensor2> = blocks.iter().collect();
        let cat = Tensor2::hcat(&refs).unwrap();
        let back = cat.hsplit(&widths).unwrap();
        prop_assert_eq!(back, blocks);
    }

    /// axpy is linear: axpy(a) then axpy(b) == axpy(a+b)
    #[test]
    fn axpy_linearity(x in tensor_strategy(8), a in -3.0f32..3.0, b in -3.0f32..3.0) {
        let y = Tensor2::from_fn(x.rows(), x.cols(), |i, j| (i + j) as f32 * 0.5);
        let mut s1 = x.clone();
        s1.axpy(a, &y).unwrap();
        s1.axpy(b, &y).unwrap();
        let mut s2 = x.clone();
        s2.axpy(a + b, &y).unwrap();
        prop_assert!(s1.max_abs_diff(&s2).unwrap() < 1e-3);
    }

    /// f16 conversion is monotone: x <= y implies f16(x) <= f16(y)
    #[test]
    fn f16_monotone(x in -1000.0f32..1000.0, y in -1000.0f32..1000.0) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }

    /// f16 double round-trip is idempotent
    #[test]
    fn f16_idempotent(x in -60000.0f32..60000.0) {
        let once = F16::from_f32(x).to_f32();
        let twice = F16::from_f32(once).to_f32();
        prop_assert_eq!(once, twice);
    }
}
