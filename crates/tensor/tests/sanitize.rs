//! Sanitizer behavior tests (ISSUE acceptance criterion): a NaN injected
//! into an MLP forward pass is caught with `--features sanitize` and flows
//! through silently without it.
//!
//! Run both ways:
//! ```text
//! cargo test -p neo-tensor
//! cargo test -p neo-tensor --features sanitize
//! ```

use neo_tensor::mlp::{Activation, Mlp, MlpConfig};
use neo_tensor::{sanitize, Tensor2};
use rand::SeedableRng;

fn mlp_with_nan_weight() -> Mlp {
    // Identity activations: Relu's `max(0.0)` would squash a NaN to zero,
    // hiding the injection from the feature-off propagation assert below.
    let cfg = MlpConfig::new(3, &[4, 2], Activation::Identity);
    let mut mlp = Mlp::new(&cfg, &mut rand::rngs::StdRng::seed_from_u64(7));
    let mut params = Vec::new();
    mlp.params_flat(&mut params);
    params[5] = f32::NAN;
    mlp.set_params_flat(&params).unwrap();
    mlp
}

#[cfg(feature = "sanitize")]
mod armed {
    use super::*;

    #[test]
    #[should_panic(expected = "sanitize:")]
    fn nan_in_mlp_forward_is_caught() {
        let mlp = mlp_with_nan_weight();
        let x = Tensor2::full(4, 3, 0.5);
        let _ = mlp.forward_inference(&x);
    }

    #[test]
    #[should_panic(expected = "sanitize:")]
    fn nan_gradient_is_caught_by_optimizer_step() {
        let cfg = MlpConfig::new(2, &[2], Activation::Identity);
        let mut mlp = Mlp::new(&cfg, &mut rand::rngs::StdRng::seed_from_u64(3));
        let mut grads = vec![0.0f32; mlp.num_params()];
        grads[0] = f32::INFINITY;
        mlp.set_grads_flat(&grads).unwrap();
        mlp.apply_optimizer(&mut neo_tensor::optim::DenseSgd::new(0.1));
    }

    #[test]
    fn clean_training_step_passes_all_checks() {
        let cfg = MlpConfig::new(3, &[4, 1], Activation::Relu);
        let mut mlp = Mlp::new(&cfg, &mut rand::rngs::StdRng::seed_from_u64(7));
        let x = Tensor2::full(4, 3, 0.5);
        let y = mlp.forward(&x);
        mlp.backward(&Tensor2::full(y.rows(), y.cols(), 1.0))
            .unwrap();
        mlp.sgd_step(0.01);
        assert!(sanitize::enabled());
    }
}

#[cfg(not(feature = "sanitize"))]
#[test]
fn nan_in_mlp_forward_is_ignored_without_sanitize() {
    let mlp = mlp_with_nan_weight();
    let x = Tensor2::full(4, 3, 0.5);
    let y = mlp.forward_inference(&x);
    assert!(
        y.as_slice().iter().any(|v| v.is_nan()),
        "without the sanitizer the NaN propagates silently"
    );
    assert!(!sanitize::enabled());
}
