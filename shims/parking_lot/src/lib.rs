//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s non-poisoning API:
//! `lock()` returns the guard directly (a poisoned std lock is recovered,
//! matching `parking_lot`'s behavior of not propagating poison).

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates the lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisition methods never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates the lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }
}
