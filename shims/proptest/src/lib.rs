//! Offline stand-in for the `proptest` crate.
//!
//! Reimplements the subset of proptest this workspace's property tests
//! use: the [`Strategy`] trait over ranges / tuples / [`Just`] /
//! [`collection::vec`] / [`any`], combinators `prop_map` and
//! `prop_flat_map`, the `proptest!` macro, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Differences from upstream: case generation is a fixed deterministic
//! sweep (one seeded RNG per case index) and failing inputs are *not*
//! shrunk — the panic message reports the case index so a failure is
//! reproducible by construction.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for case number `case`; distinct cases get unrelated streams.
    pub fn new(case: u64) -> Self {
        TestRng(case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_CAFE_F00D_D00D)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test configuration; only `cases` is honored.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; the case is skipped.
    Reject,
    /// An assertion failed; the property is falsified.
    Fail(String),
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of the held value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Types with a canonical "anything" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element counts accepted by [`vec`]: a fixed `usize` or a range.
    pub trait IntoLen {
        /// Picks the length for one generated collection.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    /// Generates `Vec`s of `elem` samples with a length drawn from `len`.
    pub fn vec<S: Strategy, L: IntoLen>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a property test module typically imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr;
     $( $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..u64::from(__cfg.cases) {
                let mut __rng = $crate::TestRng::new(__case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body; ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!("property failed on case {}: {}", __case, __msg)
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 2usize..9, b in -4i32..=4, f in 0.5f32..1.5) {
            prop_assert!((2..9).contains(&a));
            prop_assert!((-4..=4).contains(&b));
            prop_assert!((0.5..1.5).contains(&f), "f = {}", f);
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u64..5, 2..6), w in collection::vec(any::<bool>(), 3usize)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(w.len(), 3);
        }

        #[test]
        fn combinators_compose(
            pair in (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
                (Just(r), Just(c), collection::vec(0i32..10, r * c))
            })
        ) {
            let (r, c, data) = pair;
            prop_assert_eq!(data.len(), r * c);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_sampling() {
        let strat = collection::vec(0u64..100, 1..20);
        let a = strat.sample(&mut TestRng::new(5));
        let b = strat.sample(&mut TestRng::new(5));
        assert_eq!(a, b);
    }
}
