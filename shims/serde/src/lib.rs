//! Offline stand-in for the `serde` crate.
//!
//! Exposes `Serialize`/`Deserialize` as empty marker traits together with
//! the no-op derives from the vendored `serde_derive`, so the seed
//! sources' `#[derive(Serialize, Deserialize)]` annotations compile
//! without network access. No serialization machinery is provided — the
//! workspace's on-disk formats (checkpoints, results JSON) are
//! hand-rolled.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
