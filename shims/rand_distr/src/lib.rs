//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides the [`Distribution`] trait (re-exported from the vendored
//! `rand` shim) and a [`Zipf`] sampler implemented with Hörmann &
//! Derflinger's rejection-inversion method — the same algorithm upstream
//! `rand_distr` uses — so sampling is O(1) per draw with no tables.

#![forbid(unsafe_code)]

pub use rand::Distribution;
use rand::Rng;

/// Error cases for [`Zipf::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipfError {
    /// `n` was zero.
    NTooSmall,
    /// The exponent was not a positive finite number.
    STooSmall,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipfError::NTooSmall => write!(f, "Zipf: n must be >= 1"),
            ZipfError::STooSmall => write!(f, "Zipf: exponent must be > 0"),
        }
    }
}

impl std::error::Error for ZipfError {}

/// Zipf distribution over `{1, 2, ..., n}` with exponent `s`:
/// `P(k) ∝ k^-s`. Samples are returned as the float type `F` holding an
/// exact integer in `[1, n]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf<F> {
    n: F,
    s: F,
    h_x1: F,
    h_n: F,
    accept_width: F,
}

impl Zipf<f64> {
    /// Constructs the sampler for `n` elements with exponent `s`.
    ///
    /// # Errors
    ///
    /// [`ZipfError::NTooSmall`] if `n == 0`; [`ZipfError::STooSmall`] if
    /// `s` is not a positive finite number.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError::NTooSmall);
        }
        if !(s.is_finite() && s > 0.0) {
            return Err(ZipfError::STooSmall);
        }
        let nf = n as f64;
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(nf + 0.5, s);
        let accept_width = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Ok(Self {
            n: nf,
            s,
            h_x1,
            h_n,
            accept_width,
        })
    }
}

/// Antiderivative of `h(x) = x^-s`, shifted so `H(1) = 0` when `s = 1`.
fn h_integral(x: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-12 {
        x.ln()
    } else {
        (x.powf(1.0 - s) - 1.0) / (1.0 - s)
    }
}

fn h(x: f64, s: f64) -> f64 {
    x.powf(-s)
}

fn h_integral_inverse(y: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-12 {
        y.exp()
    } else {
        (1.0 + y * (1.0 - s)).powf(1.0 / (1.0 - s))
    }
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Hörmann & Derflinger rejection-inversion: invert the integral
        // envelope, round to the nearest integer, accept with the exact
        // ratio. Expected iterations < 2 for all (n, s).
        loop {
            let unit: f64 = {
                // sample in [0,1) without requiring R: Sized
                (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
            };
            let u = self.h_n + unit * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k = x.round().clamp(1.0, self.n);
            if k - x <= self.accept_width || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn samples_in_range_and_skewed() {
        let z = Zipf::new(1000, 1.05).expect("valid params");
        let mut rng = StdRng::seed_from_u64(42);
        let mut small = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            let v = z.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&v), "out of range: {v}");
            assert_eq!(v, v.round(), "not an integer: {v}");
            if v <= 100.0 {
                small += 1;
            }
        }
        // zipf(1.05) concentrates mass on the head: the first 10% of rows
        // should absorb well over half the draws
        assert!(small * 2 > N, "only {small}/{N} draws in the hottest 10%");
    }

    #[test]
    fn rejects_bad_params() {
        assert_eq!(Zipf::new(0, 1.0).unwrap_err(), ZipfError::NTooSmall);
        assert_eq!(Zipf::new(10, 0.0).unwrap_err(), ZipfError::STooSmall);
        assert_eq!(Zipf::new(10, f64::NAN).unwrap_err(), ZipfError::STooSmall);
    }

    #[test]
    fn single_element_always_one() {
        let z = Zipf::new(1, 1.2).expect("valid params");
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1.0);
        }
    }

    #[test]
    fn exponent_one_exact_branch() {
        let z = Zipf::new(50, 1.0).expect("valid params");
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = z.sample(&mut rng);
            assert!((1.0..=50.0).contains(&v));
        }
    }
}
