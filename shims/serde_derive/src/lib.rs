//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! documentation of intent — nothing serializes through serde at runtime
//! (checkpointing is hand-rolled). These derives therefore expand to
//! nothing; they exist so the seed sources compile unchanged without
//! network access to crates.io.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts and ignores `#[serde(...)]` helpers.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts and ignores `#[serde(...)]` helpers.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
