//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the one facility this workspace uses — a bounded blocking
//! channel ([`channel::bounded`]) with `len()` on the receiver and
//! disconnect-on-drop semantics on both endpoints — over
//! `std::sync::{Mutex, Condvar}`.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_full: Condvar,
        not_empty: Condvar,
    }

    impl<T> Inner<T> {
        fn lock(&self) -> MutexGuard<'_, State<T>> {
            // a poisoned channel mutex means a peer thread panicked while
            // holding it; the queue state itself is still consistent
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent value back to the caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates a bounded channel holding at most `cap` in-flight messages.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` (rendezvous channels are not needed here).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded channel capacity must be positive");
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `value`. Fails (and
        /// returns the value) once every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < st.cap {
                    st.queue.push_back(value);
                    drop(st);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .inner
                    .not_full
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.lock().senders += 1;
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.lock();
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; fails once the channel is drained
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .inner
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.inner.lock().queue.len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.lock().receivers += 1;
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.lock();
            st.receivers -= 1;
            let last = st.receivers == 0;
            drop(st);
            if last {
                // unblock producers stuck on a full queue so they can
                // observe the disconnect and exit
                self.inner.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;
        use std::time::Duration;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = bounded(4);
            for i in 0..4 {
                tx.send(i).expect("receiver alive");
            }
            assert_eq!(rx.len(), 4);
            for i in 0..4 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_fails_after_senders_gone() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).expect("receiver alive");
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn blocked_sender_unblocks_on_receiver_drop() {
            let (tx, rx) = bounded(1);
            tx.send(0u8).expect("receiver alive");
            let h = thread::spawn(move || tx.send(1));
            thread::sleep(Duration::from_millis(20));
            drop(rx);
            assert_eq!(h.join().expect("sender thread"), Err(SendError(1)));
        }

        #[test]
        fn producer_consumer_across_threads() {
            let (tx, rx) = bounded(2);
            let h = thread::spawn(move || {
                for i in 0..100u64 {
                    if tx.send(i).is_err() {
                        return;
                    }
                }
            });
            let got: Vec<u64> = (0..100)
                .map(|_| rx.recv().expect("stream intact"))
                .collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
            h.join().expect("producer");
        }
    }
}
