//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal, deterministic re-implementation of the `rand` API
//! surface it actually uses: [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64), the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`,
//! `sample`, `fill`), and [`SeedableRng`].
//!
//! The streams differ from upstream `rand`'s ChaCha12-based `StdRng`, but
//! every consumer in this workspace only relies on *determinism* (same seed
//! ⇒ same stream), never on specific values, so the substitution is
//! behavior-preserving for the test suite.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as recommended by the
            // xoshiro authors, so nearby seeds give unrelated streams.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A seedable generator, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it internally.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut x = 0u64;
        for (i, b) in seed.iter().enumerate() {
            x ^= u64::from(*b) << ((i % 8) * 8);
        }
        Self::from_u64(x)
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::from_u64(state)
    }
}

/// The user-facing generator trait, mirroring the parts of `rand::Rng`
/// this workspace uses.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform sample from `Standard`-distributed `T` (floats in
    /// `[0, 1)`, full-range integers, fair bools).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, dist: D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }

    /// Fills `dest` with uniform values.
    fn fill(&mut self, dest: &mut [f32])
    where
        Self: Sized,
    {
        for v in dest.iter_mut() {
            *v = self.gen();
        }
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A value samplable uniformly from its "natural" distribution
/// (`rand`'s `Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 precision
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// A distribution samplable with any [`Rng`], mirroring
/// `rand::distributions::Distribution`.
pub trait Distribution<T> {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        let mut c = rngs::StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1u32..=5);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let n = rng.gen_range(-7i64..-3);
            assert!((-7..-3).contains(&n));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_900..3_100).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
