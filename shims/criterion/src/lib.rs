//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock measurement loop (fixed warm-up, then timed batches, median
//! of batch means). No statistical analysis, plots, or baselines: the
//! point is that `cargo bench` runs and prints stable relative numbers
//! without network access to crates.io.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared input scale of a benchmark, used to report throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Measurement driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`: short warm-up, then several timed batches; the
    /// recorded figure is the median batch mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up: run for ~30ms or at least once
        let warm_until = Instant::now() + Duration::from_millis(30);
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if Instant::now() >= warm_until {
                break;
            }
        }
        // pick a batch size targeting ~20ms per batch
        let per_iter = Duration::from_millis(30).as_nanos() as f64 / warm_iters as f64;
        let batch = ((20e6 / per_iter).ceil() as u64).max(1);
        let mut means = Vec::with_capacity(5);
        for _ in 0..5 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            means.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        means.sort_by(|a, b| a.total_cmp(b));
        self.mean_ns = means[means.len() / 2];
    }
}

/// A named collection of related benchmark cases.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work scale for subsequent cases.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Ignored (upstream tuning knob); present so benches compile.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored (upstream tuning knob); present so benches compile.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs `routine` as the case `id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher { mean_ns: 0.0 };
        routine(&mut b);
        self.report(&id.to_string(), b.mean_ns);
        self
    }

    /// Runs `routine(bencher, input)` as the case `id`.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher { mean_ns: 0.0 };
        routine(&mut b, input);
        self.report(&id.to_string(), b.mean_ns);
        self
    }

    /// Ends the group (upstream writes reports here; we already printed).
    pub fn finish(self) {}

    fn report(&self, case: &str, mean_ns: f64) {
        let mut line = format!("{}/{:<24} {:>12.1} ns/iter", self.name, case, mean_ns);
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let _ = write!(line, "  {:>10.2} Melem/s", n as f64 / mean_ns * 1e3);
            }
            Some(Throughput::Bytes(n)) => {
                let _ = write!(
                    line,
                    "  {:>10.2} MiB/s",
                    n as f64 / mean_ns * 1e9 / (1 << 20) as f64
                );
            }
            None => {}
        }
        println!("{line}");
        let _ = self.criterion; // reserved for future aggregate reporting
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of benchmark cases.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone case.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        routine: R,
    ) -> &mut Self {
        let name = id.to_string();
        let mut g = self.benchmark_group(name);
        g.bench_function("base", routine);
        g.finish();
        self
    }
}

/// Bundles benchmark functions into a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
