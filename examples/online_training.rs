//! Online training: the paper's second deployment mode (§1).
//!
//! ```text
//! cargo run --release --example online_training
//! ```
//!
//! After offline pre-training, production DLRMs keep training on the data
//! they serve. Online training is latency-bound rather than
//! throughput-bound, so it runs at much smaller scale — which is exactly
//! why the paper needs hierarchical memory ("training very large models at
//! smaller scales", §4.1.3). This example:
//!
//! 1. pre-trains offline at "large" scale (4 workers, big batches);
//! 2. gathers the trained model to a single host;
//! 3. continues training *online* on a drifting click distribution at
//!    small batch, with the embedding tables behind the software cache;
//! 4. shows NE tracking the drift, and the cache absorbing the hot set.

use neo_dlrm::embeddings::bag::{pooled_backward, pooled_forward};
use neo_dlrm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = DlrmConfig::tiny(4, 4096, 8);
    let offline = SyntheticDataset::new(SyntheticConfig::uniform(4, 4096, 4, 4).with_seed(100))?;

    // ---- phase 1: offline pre-training, 4 workers ----
    let specs: Vec<TableSpec> = model
        .tables
        .iter()
        .enumerate()
        .map(|(i, t)| TableSpec::new(i, t.num_rows, t.dim, t.avg_pooling as f64))
        .collect();
    let plan =
        Planner::new(CostModel::v100_prototype(256), PlannerConfig::default()).plan(&specs, 4)?;
    let mut cfg = SyncConfig::exact(4, model.clone(), plan, 256);
    cfg.lr = 0.25;
    cfg.gather_final_model = true;
    let batches: Vec<_> = (0..200u64).map(|k| offline.batch(256, k)).collect();
    let out = SyncTrainer::new(cfg).train(&batches, &[], 0, None)?;
    let mut served = out.final_model.expect("gathered model");
    println!(
        "offline: {} iterations, loss {:.4} -> {:.4}",
        out.losses.len(),
        out.losses[0],
        out.losses.last().unwrap()
    );

    // ---- phase 2: move embeddings behind the software cache ----
    // (online deployments run on fewer, smaller hosts)
    let mut tables: Vec<TieredStore> = Vec::new();
    for t in &mut served.tables {
        let dense = DenseStore::from_tensor(t.to_dense());
        tables.push(TieredStore::new(Box::new(dense), 512, Policy::Lfu));
    }
    let mut opts: Vec<SparseSgd> = (0..4).map(|_| SparseSgd::new(0.05)).collect();

    // ---- phase 3: online stream with drifted distribution ----
    let online = SyntheticDataset::new(
        SyntheticConfig::uniform(4, 4096, 4, 4).with_seed(777), // drifted teacher
    )?;
    let mut ne_before = NormalizedEntropy::new();
    let mut ne_after = NormalizedEntropy::new();
    for step in 0..400u64 {
        let batch = online.batch(32, step);
        // serve: forward through bottom MLP + cached tables + top MLP
        let z0 = served.bottom.forward(&batch.dense);
        let mut features = vec![z0];
        for (t, table) in tables.iter_mut().enumerate() {
            let (lens, idx) = batch.table_inputs(t);
            features.push(pooled_forward(table, lens, idx)?);
        }
        let refs: Vec<&Tensor2> = features.iter().collect();
        let inter = neo_dlrm::dlrm::interaction::dot_interaction(&refs)?;
        let top_in = Tensor2::hcat(&[&features[0], &inter])?;
        let logits = served.top.forward(&top_in);
        let slot = if step < 50 {
            &mut ne_before
        } else {
            &mut ne_after
        };
        slot.observe_logits(&logits, &batch.labels);

        // learn online: full backward, small-batch updates
        let (_, grad) = bce_with_logits(&logits, &batch.labels)?;
        let g_top = served.top.backward(&grad)?;
        let d = 8;
        let pairs = neo_dlrm::dlrm::interaction::num_pairs(5);
        let splits = g_top.hsplit(&[d, pairs])?;
        let mut g_feats = neo_dlrm::dlrm::interaction::dot_interaction_backward(&refs, &splits[1])?;
        g_feats[0] += &splits[0];
        served.bottom.backward(&g_feats[0])?;
        served.bottom.sgd_step(0.05);
        served.top.sgd_step(0.05);
        for (t, table) in tables.iter_mut().enumerate() {
            let (lens, idx) = batch.table_inputs(t);
            let sg = pooled_backward(lens, idx, &g_feats[t + 1])?;
            opts[t].step(table, &sg);
        }
    }
    println!(
        "online: NE on drifted traffic {:.4} (first 50 batches) -> {:.4} (after adapting)",
        ne_before.value().unwrap_or(f64::NAN),
        ne_after.value().unwrap_or(f64::NAN)
    );
    let stats = tables[0].cache_stats();
    println!(
        "cache (LFU, 512 rows over 4096): hit rate {:.1}% across {} accesses",
        stats.hit_rate() * 100.0,
        stats.hits + stats.misses
    );
    for t in &mut tables {
        t.flush();
    }
    println!("flushed caches — model ready to checkpoint");
    Ok(())
}
