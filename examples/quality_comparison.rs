//! Fig. 10 at laptop scale: async small-batch parameter-server training vs
//! synchronous large-batch training on the same synthetic CTR stream.
//!
//! ```text
//! cargo run --release --example quality_comparison
//! ```
//!
//! The paper's claim: synchronous large-batch training reaches on-par or
//! better normalized entropy than the legacy asynchronous system despite a
//! ~400x larger batch.

use neo_dlrm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = DlrmConfig::tiny(4, 512, 8);
    let ds = SyntheticDataset::new(SyntheticConfig::uniform(4, 512, 4, 4))?;
    let eval: Vec<_> = (20_000..20_008).map(|k| ds.batch(256, k)).collect();

    // async: 4 logical trainers, batch 16, stale dense snapshots
    let mut ps = PsTrainer::new(PsConfig {
        model: model.clone(),
        num_trainers: 4,
        batch_size: 16,
        staleness: 8,
        lr: 0.03,
        seed: 7,
        dense_sync: Default::default(),
    })?;
    println!("async parameter server (B=16, staleness 8):");
    for (samples, ne) in ps.train(&ds, 2048, &eval)?.iter().step_by(2) {
        println!("  {samples:>7} samples  NE {ne:.4}");
    }

    // sync: global batch 256 over 4 workers
    let specs: Vec<TableSpec> = model
        .tables
        .iter()
        .enumerate()
        .map(|(i, t)| TableSpec::new(i, t.num_rows, t.dim, t.avg_pooling as f64))
        .collect();
    let plan =
        Planner::new(CostModel::v100_prototype(256), PlannerConfig::default()).plan(&specs, 4)?;
    // linear LR scaling for the 16x larger batch (0.03 * 256/16 ~= 0.5) —
    // the "appropriately tuned hyper-parameters" of §5.3
    let mut cfg = SyncConfig::exact(4, model, plan, 256);
    cfg.lr = 0.5;
    cfg.seed = 7;
    let batches: Vec<_> = (0..128u64).map(|k| ds.batch(256, k + 50_000)).collect();
    let out = SyncTrainer::new(cfg).train(&batches, &eval, 16, None)?;
    println!("sync large batch (B=256, 4 workers):");
    for (samples, ne) in &out.ne_curve {
        println!("  {samples:>7} samples  NE {ne:.4}");
    }
    Ok(())
}
