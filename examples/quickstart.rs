//! Quickstart: train a small DLRM synchronously across 4 simulated GPUs.
//!
//! ```text
//! cargo run --release --example quickstart [-- --telemetry out.json]
//! ```
//!
//! Demonstrates the full Neo pipeline at laptop scale: synthetic CTR data
//! in the combined format, a planner-generated hybrid sharding plan, the
//! hybrid-parallel trainer with quantized AlltoAll, and normalized-entropy
//! evaluation.
//!
//! With `--telemetry <out.json>` the run arms the metrics registry and
//! writes two artifacts: the metrics/span summary to `<out.json>`, and a
//! Chrome trace (load it at `chrome://tracing` or <https://ui.perfetto.dev>)
//! to `<out.json>` with the extension replaced by `.trace.json`. It also
//! prints the `neo-prof` cross-rank report: the phase bounding each
//! iteration's critical path, per-phase rank skew, and the exposed-comm
//! fraction measured against the perfmodel prediction.

use neo_dlrm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let telemetry_path = parse_telemetry_arg()?;
    // 1. model: 8 embedding tables of 20000 rows, dim 16
    let model = DlrmConfig::tiny(8, 20_000, 16);
    println!("model: {} parameters", model.num_params());

    // 2. sharding plan across 4 workers
    let specs: Vec<TableSpec> = model
        .tables
        .iter()
        .enumerate()
        .map(|(i, t)| TableSpec::new(i, t.num_rows, t.dim, t.avg_pooling as f64))
        .collect();
    let planner = Planner::new(CostModel::v100_prototype(256), PlannerConfig::default());
    let plan = planner.plan(&specs, 4)?;
    let (tw, rw, cw, dp) = plan.scheme_histogram();
    println!(
        "plan: {tw} table-wise, {rw} row-wise, {cw} column-wise, {dp} data-parallel; \
         imbalance {:.3}",
        planner.plan_imbalance(&plan, &specs)
    );

    // 3. trainer: FP16 forward AlltoAll, BF16 backward (§5.3.2)
    let mut cfg = SyncConfig::exact(4, model, plan, 256);
    cfg.quant_fwd = QuantMode::Fp16;
    cfg.quant_bwd = QuantMode::Bf16;
    cfg.lr = 0.4;
    if telemetry_path.is_some() {
        cfg.telemetry = TelemetrySink::armed();
    }
    let sink = cfg.telemetry.clone();
    let trainer = SyncTrainer::new(cfg);

    // 4. synthetic CTR stream + eval set
    let ds = SyntheticDataset::new(SyntheticConfig::uniform(8, 20_000, 4, 4))?;
    let train: Vec<_> = (0..120).map(|k| ds.batch(256, k)).collect();
    let eval: Vec<_> = (10_000..10_004).map(|k| ds.batch(256, k)).collect();

    // 5. train, evaluating NE every 20 iterations
    let out = trainer.train(&train, &eval, 20, None)?;
    println!(
        "loss: first {:.4} -> last {:.4}",
        out.losses[0],
        out.losses.last().unwrap()
    );
    for (samples, ne) in &out.ne_curve {
        println!("  after {samples:>6} samples: NE = {ne:.4}");
    }
    let wire_mb: u64 = out.comm.iter().map(|s| s.bytes_sent).sum::<u64>() / (1 << 20);
    println!("total collective traffic: {wire_mb} MiB across 4 workers");

    // 6. optionally dump the telemetry artifacts
    if let Some(path) = telemetry_path {
        if let Some(summary) = &out.telemetry_summary {
            println!("{summary}");
        }
        // cross-rank critical path + exposed-comm analysis (neo-prof)
        if let Some(report) = out.telemetry.as_ref().and_then(analyze) {
            println!("{report}");
        }
        let json = sink.export_json().ok_or("telemetry sink was not armed")?;
        std::fs::write(&path, json)?;
        let trace = sink
            .export_chrome_trace()
            .ok_or("telemetry sink was not armed")?;
        let trace_path = trace_file_for(&path);
        std::fs::write(&trace_path, trace)?;
        println!("telemetry written to {path} and {trace_path}");
    }
    Ok(())
}

/// Pulls `--telemetry <path>` out of the CLI args, if present.
fn parse_telemetry_arg() -> Result<Option<String>, String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--telemetry" {
            return match args.next() {
                Some(p) => Ok(Some(p)),
                None => Err("--telemetry requires an output path".into()),
            };
        }
    }
    Ok(None)
}

/// `out.json` -> `out.trace.json` (appends when there is no extension).
fn trace_file_for(path: &str) -> String {
    match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.trace.json"),
        None => format!("{path}.trace.json"),
    }
}
