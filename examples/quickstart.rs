//! Quickstart: train a small DLRM synchronously across 4 simulated GPUs.
//!
//! ```text
//! cargo run --release --example quickstart \
//!     [-- --telemetry out.json] [--overlap] [--comm-delay]
//! ```
//!
//! `--overlap` trains on the overlapped (Fig. 9) schedule instead of the
//! serial one — bitwise-identical losses, different wall-clock shape.
//! `--comm-delay` injects the ZionEX-derived wire latency into every
//! collective so communication costs real time; combine both to
//! reproduce the Fig. 14 exposed-comm drop measured in README.md.
//!
//! Demonstrates the full Neo pipeline at laptop scale: synthetic CTR data
//! in the combined format streamed through the background prefetcher and
//! shared per-worker feed, a planner-generated hybrid sharding plan, the
//! hybrid-parallel trainer with quantized AlltoAll, and normalized-entropy
//! evaluation.
//!
//! With `--telemetry <out.json>` the run arms the metrics registry and
//! writes two artifacts: the metrics/span summary to `<out.json>`, and a
//! Chrome trace (load it at `chrome://tracing` or <https://ui.perfetto.dev>)
//! to `<out.json>` with the extension replaced by `.trace.json`. It also
//! prints the `neo-prof` cross-rank report: the phase bounding each
//! iteration's critical path, per-phase rank skew, and the exposed-comm
//! fraction measured against the perfmodel prediction.

use neo_dlrm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args()?;
    let telemetry_path = args.telemetry;
    // 1. model: 8 embedding tables of 20000 rows, dim 16
    let model = DlrmConfig::tiny(8, 20_000, 16);
    println!("model: {} parameters", model.num_params());

    // 2. sharding plan across 4 workers
    let specs: Vec<TableSpec> = model
        .tables
        .iter()
        .enumerate()
        .map(|(i, t)| TableSpec::new(i, t.num_rows, t.dim, t.avg_pooling as f64))
        .collect();
    let planner = Planner::new(CostModel::v100_prototype(256), PlannerConfig::default());
    let plan = planner.plan(&specs, 4)?;
    let (tw, rw, cw, dp) = plan.scheme_histogram();
    println!(
        "plan: {tw} table-wise, {rw} row-wise, {cw} column-wise, {dp} data-parallel; \
         imbalance {:.3}",
        planner.plan_imbalance(&plan, &specs)
    );

    // 3. trainer: FP16 forward AlltoAll, BF16 backward (§5.3.2)
    let mut cfg = SyncConfig::exact(4, model, plan, 256);
    cfg.quant_fwd = QuantMode::Fp16;
    cfg.quant_bwd = QuantMode::Bf16;
    cfg.lr = 0.4;
    cfg.overlap = args.overlap;
    if args.comm_delay {
        // wire cost priced like the bench suite's Fig. 14 pair
        cfg.comm_delay = Some(CommDelay::new(16e9, 100e-6));
    }
    if args.overlap || args.comm_delay {
        println!(
            "schedule: {}{}",
            if args.overlap {
                "overlapped (Fig. 9)"
            } else {
                "serial"
            },
            if args.comm_delay {
                " + injected wire delay"
            } else {
                ""
            },
        );
    }
    if telemetry_path.is_some() {
        cfg.telemetry = TelemetrySink::armed();
    }
    let sink = cfg.telemetry.clone();
    let trainer = SyncTrainer::new(cfg);

    // 4. synthetic CTR stream + eval set, fed through the §4.4 ingestion
    //    pipeline: a background prefetcher builds batches ahead of the
    //    trainer (double-buffered) and a shared feed hands each global
    //    batch to all 4 workers
    const ITERS: u64 = 120;
    let ds = SyntheticDataset::new(SyntheticConfig::uniform(8, 20_000, 4, 4))?;
    let eval: Vec<_> = (10_000..10_004).map(|k| ds.batch(256, k)).collect();
    let reader =
        PrefetchReader::spawn_with_telemetry(ITERS, 2, sink.clone(), move |k| ds.batch(256, k));
    let feed = SharedFeed::new(reader, 4);

    // 5. train, evaluating NE every 20 iterations
    let out = trainer.train_stream(
        ITERS,
        |k| feed.batch(k).expect("prefetch feed covers every iteration"),
        &eval,
        20,
        None,
    )?;
    println!(
        "loss: first {:.4} -> last {:.4}",
        out.losses[0],
        out.losses.last().unwrap()
    );
    for (samples, ne) in &out.ne_curve {
        println!("  after {samples:>6} samples: NE = {ne:.4}");
    }
    let wire_mb: u64 = out.comm.iter().map(|s| s.bytes_sent).sum::<u64>() / (1 << 20);
    println!("total collective traffic: {wire_mb} MiB across 4 workers");

    // 6. optionally dump the telemetry artifacts
    if let Some(path) = telemetry_path {
        if let Some(summary) = &out.telemetry_summary {
            println!("{summary}");
        }
        // cross-rank critical path + exposed-comm analysis (neo-prof)
        if let Some(report) = out.telemetry.as_ref().and_then(analyze) {
            println!("{report}");
        }
        let json = sink.export_json().ok_or("telemetry sink was not armed")?;
        std::fs::write(&path, json)?;
        let trace = sink
            .export_chrome_trace()
            .ok_or("telemetry sink was not armed")?;
        let trace_path = trace_file_for(&path);
        std::fs::write(&trace_path, trace)?;
        println!("telemetry written to {path} and {trace_path}");
    }
    Ok(())
}

struct Args {
    telemetry: Option<String>,
    overlap: bool,
    comm_delay: bool,
}

/// Parses `[--telemetry <path>] [--overlap] [--comm-delay]`.
fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        telemetry: None,
        overlap: false,
        comm_delay: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--telemetry" => match args.next() {
                Some(p) => parsed.telemetry = Some(p),
                None => return Err("--telemetry requires an output path".into()),
            },
            "--overlap" => parsed.overlap = true,
            "--comm-delay" => parsed.comm_delay = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(parsed)
}

/// `out.json` -> `out.trace.json` (appends when there is no extension).
fn trace_file_for(path: &str) -> String {
    match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.trace.json"),
        None => format!("{path}.trace.json"),
    }
}
