//! Shard a production-scale model (A2 from Table 3) across 128 simulated
//! GPUs and compare the placement heuristics of §4.2.5.
//!
//! ```text
//! cargo run --release --example sharding_planner
//! ```

use neo_dlrm::prelude::*;
use neo_dlrm::sharding::planner::Algorithm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = ModelProfile::a2();
    let specs: Vec<TableSpec> = profile
        .synthetic_tables()
        .into_iter()
        .enumerate()
        .map(|(i, (rows, dim, pooling))| TableSpec::new(i, rows, dim, pooling))
        .collect();
    println!(
        "model {}: {} tables, {:.0}B parameters",
        profile.name,
        specs.len(),
        profile.num_params / 1e9
    );

    let cost = CostModel::v100_prototype(65536);
    for (label, config) in [
        (
            "table-wise only, greedy",
            PlannerConfig::default()
                .table_wise_only()
                .with_algorithm(Algorithm::Greedy),
        ),
        (
            "mixed schemes,   greedy",
            PlannerConfig::default().with_algorithm(Algorithm::Greedy),
        ),
        (
            "mixed schemes,   LDM   ",
            PlannerConfig::default().with_algorithm(Algorithm::KarmarkarKarp),
        ),
    ] {
        let planner = Planner::new(cost, config);
        let plan = planner.plan(&specs, 128)?;
        let (tw, rw, cw, dp) = plan.scheme_histogram();
        let imb = planner.plan_imbalance(&plan, &specs);
        let mem = plan.memory_per_worker(&specs, 4);
        let max_mem = *mem.iter().max().unwrap() as f64 / (1u64 << 30) as f64;
        println!(
            "  {label}: imbalance {imb:.3} | schemes tw={tw} rw={rw} cw={cw} dp={dp} | \
             max worker memory {max_mem:.1} GiB"
        );
    }

    // per-worker cost spread under the best plan
    let planner = Planner::new(cost, PlannerConfig::default());
    let plan = planner.plan(&specs, 128)?;
    let load = planner.per_worker_cost(&plan, &specs);
    let min = load.iter().copied().fold(f64::INFINITY, f64::min);
    let max = load.iter().copied().fold(0.0f64, f64::max);
    let mean: f64 = load.iter().sum::<f64>() / load.len() as f64;
    println!(
        "  per-worker model-parallel cost: min {:.2} ms, mean {:.2} ms, max {:.2} ms",
        min * 1e3,
        mean * 1e3,
        max * 1e3
    );
    Ok(())
}
