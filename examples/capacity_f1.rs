//! The §5.3.3 capacity study, both arithmetic and mechanism.
//!
//! ```text
//! cargo run --release --example capacity_f1
//! ```
//!
//! Part 1 reproduces the paper's capacity chain for the 12T-parameter
//! model F1 (96 TB naive → 24 TB after row-wise AdaGrad + FP16, fitting the
//! 16-node HBM+DRAM hierarchy). Part 2 demonstrates the mechanism at
//! laptop scale: an embedding table bigger than its "HBM" trains through
//! the 32-way set-associative software cache with LRU replacement, and the
//! Zipf-skewed access pattern keeps the hit rate high.

use neo_dlrm::embeddings::bag::{pooled_backward, pooled_forward};
use neo_dlrm::perfmodel::capacity::{capacity_chain, fit_on_cluster};
use neo_dlrm::prelude::*;
use neo_dlrm::trainer::init::det_row;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- part 1: the paper's arithmetic ----
    println!("capacity chain for model F1 (12T parameters) on 16 nodes:");
    for step in capacity_chain(&ModelProfile::f1()) {
        let fit = fit_on_cluster(step.bytes, 16);
        println!(
            "  {:<28} {:>8.1} TB  fits: {}",
            step.label,
            step.bytes / 1e12,
            if fit.fits { "yes" } else { "NO" }
        );
    }

    // ---- part 2: the mechanism, for real ----
    // a 200k-row table backed by "DDR", fronted by a 16k-row "HBM" cache
    let rows: u64 = 200_000;
    let dim = 32;
    let mut backing = DenseStore::zeros(rows, dim);
    for r in 0..rows {
        backing.write_row(r, &det_row(1, 0, r, dim, rows));
    }
    let mut table = TieredStore::new(Box::new(backing), 16_384, Policy::Lru);
    let mut opt = RowWiseAdagrad::new(0.05, 1e-8, rows);

    // Zipf-skewed lookups + updates, the production access pattern
    let ds = SyntheticDataset::new(SyntheticConfig::uniform(1, rows, 8, 2))?;
    for step in 0..50u64 {
        let batch = ds.batch(512, step);
        let (lens, idx) = batch.table_inputs(0);
        let pooled = pooled_forward(&mut table, lens, idx)?;
        // pretend gradient: pull pooled outputs toward zero
        let grad = pooled.map(|v| v * 1e-3);
        let sparse = pooled_backward(lens, idx, &grad)?;
        opt.step(&mut table, &sparse);
    }
    let stats = table.cache_stats();
    println!(
        "\ntiered table: {} rows behind a {}-row cache ({}x over-subscription)",
        rows,
        table.cache_capacity_rows(),
        rows as usize / table.cache_capacity_rows()
    );
    println!(
        "  cache hit rate {:.1}% over {} accesses, {} writebacks",
        stats.hit_rate() * 100.0,
        stats.hits + stats.misses,
        stats.writebacks
    );
    table.flush();
    println!("  flushed dirty rows to the backing tier");
    Ok(())
}
