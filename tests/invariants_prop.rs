//! Property-based cross-crate invariants.

use neo_dlrm::collectives::ProcessGroup;
use neo_dlrm::dataio::ops::{bucketize_rows, permute_wtb_to_twb, row_block_size};
use neo_dlrm::dataio::CombinedBatch;
use neo_dlrm::embeddings::bag::SparseGrad;
use neo_dlrm::embeddings::optim::merge_grads;
use neo_dlrm::embeddings::{DenseStore, RowStore, TieredStore};
use neo_dlrm::memory::Policy;
use neo_dlrm::sharding::partition::{greedy, imbalance, karmarkar_karp};
use neo_dlrm::tensor::{Tensor2, F16};
use proptest::prelude::*;

/// Strategy: a well-formed combined batch.
fn batch_strategy() -> impl Strategy<Value = CombinedBatch> {
    (1usize..5, 2usize..9)
        .prop_flat_map(|(tables, batch)| {
            let lengths = proptest::collection::vec(0u32..4, tables * batch);
            (Just(tables), Just(batch), lengths)
        })
        .prop_flat_map(|(tables, batch, lengths)| {
            let total: usize = lengths.iter().map(|&l| l as usize).sum();
            let indices = proptest::collection::vec(0u64..50, total);
            let labels = proptest::collection::vec(0u32..2, batch);
            (Just(tables), Just(batch), Just(lengths), indices, labels)
        })
        .prop_map(|(tables, batch, lengths, indices, labels)| {
            CombinedBatch::new(
                batch,
                tables,
                lengths,
                indices,
                Tensor2::from_fn(batch, 3, |i, j| (i * 3 + j) as f32 * 0.1),
                labels.into_iter().map(|l| l as f32).collect(),
            )
            .unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// split-then-concat is the identity for any divisor of the batch.
    #[test]
    fn batch_split_concat_roundtrip(batch in batch_strategy(), parts in 1usize..5) {
        prop_assume!(batch.batch_size().is_multiple_of(parts));
        let split = batch.split(parts).unwrap();
        let rejoined = CombinedBatch::concat(&split).unwrap();
        prop_assert_eq!(rejoined, batch);
    }

    /// bucketize preserves every (bag, global-row) pair.
    #[test]
    fn bucketize_preserves_pairs(
        lengths in proptest::collection::vec(0u32..5, 1..8),
        shards in 1usize..5,
    ) {
        let total: usize = lengths.iter().map(|&l| l as usize).sum();
        let num_rows = 40u64;
        let indices: Vec<u64> = (0..total as u64).map(|i| (i * 7) % num_rows).collect();
        let bz = bucketize_rows(shards, num_rows, &lengths, &indices).unwrap();
        let block = row_block_size(num_rows, shards);

        // reconstruct the multiset of (bag, global row) pairs
        let mut original: Vec<(usize, u64)> = Vec::new();
        let mut cursor = 0;
        for (bag, &l) in lengths.iter().enumerate() {
            for &idx in &indices[cursor..cursor + l as usize] {
                original.push((bag, idx));
            }
            cursor += l as usize;
        }
        original.sort_unstable();

        let mut recovered: Vec<(usize, u64)> = Vec::new();
        for s in 0..shards {
            let (sl, si) = bz.shard_inputs(s);
            let mut c = 0;
            for (bag, &l) in sl.iter().enumerate() {
                for &local in &si[c..c + l as usize] {
                    recovered.push((bag, s as u64 * block + local));
                }
                c += l as usize;
            }
        }
        recovered.sort_unstable();
        prop_assert_eq!(recovered, original);
    }

    /// permute preserves the index multiset and total lengths.
    #[test]
    fn permute_preserves_content(w in 1usize..4, t in 1usize..4, b in 1usize..4) {
        let lengths: Vec<u32> = (0..w * t * b).map(|k| (k % 3) as u32).collect();
        let total: usize = lengths.iter().map(|&l| l as usize).sum();
        let indices: Vec<u64> = (0..total as u64).collect();
        let (pl, pi) = permute_wtb_to_twb(w, t, b, &lengths, &indices).unwrap();
        prop_assert_eq!(
            pl.iter().map(|&l| l as usize).sum::<usize>(),
            total
        );
        let mut sorted = pi.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, indices);
    }

    /// merged sparse gradients preserve the per-row gradient sum.
    #[test]
    fn merge_preserves_row_sums(
        pairs in proptest::collection::vec((0u64..10, -1.0f32..1.0), 0..30)
    ) {
        let grads = Tensor2::from_fn(pairs.len(), 2, |i, j| pairs[i].1 * (j as f32 + 1.0));
        let sg = SparseGrad { indices: pairs.iter().map(|p| p.0).collect(), grads };
        let merged = merge_grads(&sg);

        // indices strictly increasing = sorted unique
        prop_assert!(merged.indices.windows(2).all(|w| w[0] < w[1]));

        for (k, &idx) in merged.indices.iter().enumerate() {
            let want: f32 = pairs.iter().filter(|p| p.0 == idx).map(|p| p.1).sum();
            prop_assert!((merged.grads.row(k)[0] - want).abs() < 1e-4);
            prop_assert!((merged.grads.row(k)[1] - 2.0 * want).abs() < 1e-4);
        }
    }

    /// a cache-fronted store is observationally identical to a plain one.
    #[test]
    fn tiered_store_equals_dense(
        ops in proptest::collection::vec((0u64..64, -10.0f32..10.0, any::<bool>()), 1..80),
        cache_rows in 1usize..64,
    ) {
        let mut plain = DenseStore::zeros(64, 2);
        let mut tiered =
            TieredStore::new(Box::new(DenseStore::zeros(64, 2)), cache_rows, Policy::Lru);
        let mut buf_a = [0.0f32; 2];
        let mut buf_b = [0.0f32; 2];
        for (row, val, is_write) in ops {
            if is_write {
                plain.write_row(row, &[val, -val]);
                tiered.write_row(row, &[val, -val]);
            } else {
                plain.read_row(row, &mut buf_a);
                tiered.read_row(row, &mut buf_b);
                prop_assert_eq!(buf_a, buf_b);
            }
        }
        prop_assert_eq!(plain.to_dense(), tiered.to_dense());
    }

    /// f16 round-trips within half-precision tolerance.
    #[test]
    fn f16_roundtrip_error_bound(v in -60000.0f32..60000.0) {
        let r = F16::from_f32(v).to_f32();
        // RNE error bound: half ULP = 2^-11 relative for normals
        prop_assert!((r - v).abs() <= v.abs() * (1.0 / 2048.0) + 1e-7, "{} -> {}", v, r);
    }

    /// both partitioners produce complete assignments with imbalance >= 1.
    #[test]
    fn partitioners_valid(
        costs in proptest::collection::vec(0.01f64..10.0, 1..40),
        bins in 1usize..8,
    ) {
        for a in [greedy(&costs, bins), karmarkar_karp(&costs, bins)] {
            prop_assert_eq!(a.len(), costs.len());
            prop_assert!(a.iter().all(|&b| b < bins));
            prop_assert!(imbalance(&costs, &a, bins) >= 1.0 - 1e-12);
        }
    }
}

/// AllReduce equals the explicit sum over ranks for random inputs.
/// (Not inside the proptest! macro: thread spawning per case is costly, so
/// we drive fewer cases manually.)
#[test]
fn all_reduce_equals_explicit_sum() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    for _ in 0..10 {
        let world = rng.gen_range(1..5);
        let n = rng.gen_range(1..20);
        let inputs: Vec<Vec<f32>> = (0..world)
            .map(|_| (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect())
            .collect();
        let mut want = vec![0.0f32; n];
        for rank_input in &inputs {
            for (w, v) in want.iter_mut().zip(rank_input) {
                *w += v;
            }
        }
        let handles: Vec<_> = ProcessGroup::new(world)
            .into_iter()
            .zip(inputs)
            .map(|(mut c, mut buf)| {
                std::thread::spawn(move || {
                    c.all_reduce(&mut buf).expect("all_reduce");
                    buf
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), want);
        }
    }
}
