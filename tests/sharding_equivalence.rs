//! Cross-crate invariant: every sharding scheme — and any mix of them —
//! must train to the same model as the unsharded single-device reference.
//!
//! This is the load-bearing correctness property of hybrid parallelism
//! (§4.2): sharding is a *performance* decision that must be invisible to
//! the math.

use neo_dlrm::dataio::{SyntheticConfig, SyntheticDataset};
use neo_dlrm::dlrm::{bce_with_logits, DlrmConfig};
use neo_dlrm::embeddings::{SparseOptimizer, SparseSgd};
use neo_dlrm::sharding::{Scheme, ShardingPlan, TablePlacement};
use neo_dlrm::tensor::Tensor2;
use neo_dlrm::trainer::init::reference_model;
use neo_dlrm::trainer::{SyncConfig, SyncTrainer};

const TABLES: usize = 4;
const ROWS: u64 = 96;
const DIM: usize = 8;
const BATCH: usize = 32;
const ITERS: u64 = 6;

fn model_cfg() -> DlrmConfig {
    DlrmConfig::tiny(TABLES, ROWS, DIM)
}

fn dataset() -> SyntheticDataset {
    SyntheticDataset::new(SyntheticConfig::uniform(TABLES, ROWS, 3, 4)).unwrap()
}

/// Reference logits after training on the same batches.
fn reference_logits() -> Tensor2 {
    let ds = dataset();
    let mut m = reference_model(&model_cfg(), 42).unwrap();
    let mut opts: Vec<SparseSgd> = (0..TABLES).map(|_| SparseSgd::new(0.05)).collect();
    for k in 0..ITERS {
        let b = ds.batch(BATCH, k);
        let logits = m.forward(&b).unwrap();
        let (_, grad) = bce_with_logits(&logits, &b.labels).unwrap();
        let sparse = m.backward(&grad).unwrap();
        m.dense_sgd_step(0.05);
        for (opt, (table, sg)) in opts.iter_mut().zip(m.tables.iter_mut().zip(&sparse)) {
            opt.step(table.as_mut(), sg);
        }
    }
    m.forward_inference(&ds.batch(BATCH, 10_000)).unwrap()
}

fn distributed_logits(world: usize, plan: ShardingPlan) -> Tensor2 {
    let ds = dataset();
    let batches: Vec<_> = (0..ITERS).map(|k| ds.batch(BATCH, k)).collect();
    let probe = ds.batch(BATCH, 10_000);
    let cfg = SyncConfig::exact(world, model_cfg(), plan, BATCH);
    SyncTrainer::new(cfg)
        .train(&batches, &[], 0, Some(&probe))
        .unwrap()
        .probe_logits
        .unwrap()
}

fn uniform_plan(world: usize, make: impl Fn(usize) -> Scheme) -> ShardingPlan {
    ShardingPlan {
        world,
        placements: (0..TABLES)
            .map(|t| TablePlacement {
                table: t,
                scheme: make(t),
            })
            .collect(),
    }
}

fn assert_matches_reference(plan: ShardingPlan, world: usize, label: &str) {
    let want = reference_logits();
    let got = distributed_logits(world, plan);
    let diff = got.max_abs_diff(&want).unwrap();
    assert!(diff < 2e-3, "{label}: max logit diff {diff}");
}

#[test]
fn all_table_wise_matches_reference() {
    let plan = uniform_plan(4, |t| Scheme::TableWise { worker: t % 4 });
    assert_matches_reference(plan, 4, "table-wise");
}

#[test]
fn all_row_wise_matches_reference() {
    let plan = uniform_plan(4, |_| Scheme::RowWise {
        workers: vec![0, 1, 2, 3],
    });
    assert_matches_reference(plan, 4, "row-wise");
}

#[test]
fn partial_row_wise_matches_reference() {
    // shards on a strict subset of the workers
    let plan = uniform_plan(4, |_| Scheme::RowWise {
        workers: vec![1, 3],
    });
    assert_matches_reference(plan, 4, "row-wise on 2 of 4 workers");
}

#[test]
fn all_column_wise_matches_reference() {
    let plan = uniform_plan(4, |_| Scheme::ColumnWise {
        workers: vec![0, 1, 2, 3],
        split_dims: vec![2, 2, 2, 2],
    });
    assert_matches_reference(plan, 4, "column-wise");
}

#[test]
fn uneven_column_split_matches_reference() {
    let plan = uniform_plan(2, |_| Scheme::ColumnWise {
        workers: vec![0, 1],
        split_dims: vec![5, 3],
    });
    assert_matches_reference(plan, 2, "uneven column-wise");
}

#[test]
fn all_data_parallel_matches_reference() {
    let plan = uniform_plan(4, |_| Scheme::DataParallel);
    assert_matches_reference(plan, 4, "data-parallel");
}

#[test]
fn mixed_schemes_match_reference() {
    let plan = ShardingPlan {
        world: 4,
        placements: vec![
            TablePlacement {
                table: 0,
                scheme: Scheme::TableWise { worker: 2 },
            },
            TablePlacement {
                table: 1,
                scheme: Scheme::RowWise {
                    workers: vec![0, 1, 2, 3],
                },
            },
            TablePlacement {
                table: 2,
                scheme: Scheme::ColumnWise {
                    workers: vec![3, 1],
                    split_dims: vec![4, 4],
                },
            },
            TablePlacement {
                table: 3,
                scheme: Scheme::DataParallel,
            },
        ],
    };
    assert_matches_reference(plan, 4, "mixed");
}

#[test]
fn single_worker_plan_matches_reference() {
    let plan = uniform_plan(1, |_| Scheme::TableWise { worker: 0 });
    assert_matches_reference(plan, 1, "world=1");
}
