//! End-to-end pipeline tests: data ingestion → planner → distributed
//! training → evaluation, with the paper's optimization stack
//! (FP16 tables, quantized comms, row-wise AdaGrad) enabled.

use neo_dlrm::collectives::QuantMode;
use neo_dlrm::dataio::{PrefetchReader, SyntheticConfig, SyntheticDataset};
use neo_dlrm::dlrm::DlrmConfig;
use neo_dlrm::sharding::{CostModel, Planner, PlannerConfig, TableSpec};
use neo_dlrm::trainer::sync::SparseOpt;
use neo_dlrm::trainer::{PsConfig, PsTrainer, SyncConfig, SyncTrainer};

fn specs_of(model: &DlrmConfig) -> Vec<TableSpec> {
    model
        .tables
        .iter()
        .enumerate()
        .map(|(i, t)| TableSpec::new(i, t.num_rows, t.dim, t.avg_pooling as f64))
        .collect()
}

#[test]
fn full_stack_trains_with_all_optimizations() {
    let model = DlrmConfig::tiny(6, 512, 8);
    let ds = SyntheticDataset::new(SyntheticConfig::uniform(6, 512, 4, 4)).unwrap();
    let plan = Planner::new(CostModel::v100_prototype(64), PlannerConfig::default())
        .plan(&specs_of(&model), 4)
        .unwrap();

    let mut cfg = SyncConfig::exact(4, model, plan, 64);
    cfg.quant_fwd = QuantMode::Fp16;
    cfg.quant_bwd = QuantMode::Bf16;
    cfg.fp16_embeddings = true;
    cfg.optimizer = SparseOpt::RowWiseAdagrad;
    cfg.lr = 0.1;

    // ingest through the prefetching reader, like production
    let gen = ds.clone();
    let mut reader = PrefetchReader::spawn(50, 2, move |k| gen.batch(64, k));
    let mut batches = Vec::new();
    while let Some(b) = reader.next_batch() {
        batches.push(b);
    }
    assert_eq!(batches.len(), 50);

    let eval: Vec<_> = (9_000..9_004).map(|k| ds.batch(64, k)).collect();
    let out = SyncTrainer::new(cfg)
        .train(&batches, &eval, 25, None)
        .unwrap();
    assert_eq!(out.losses.len(), 50);
    assert_eq!(out.ne_curve.len(), 2);
    let head: f32 = out.losses[..5].iter().sum::<f32>() / 5.0;
    let tail: f32 = out.losses[45..].iter().sum::<f32>() / 5.0;
    assert!(tail < head, "loss {head:.4} -> {tail:.4}");
    assert!(
        out.ne_curve[1].1 <= out.ne_curve[0].1 + 0.01,
        "NE {:.4} -> {:.4}",
        out.ne_curve[0].1,
        out.ne_curve[1].1
    );
}

#[test]
fn planner_generated_plans_work_at_several_world_sizes() {
    let model = DlrmConfig::tiny(5, 300, 8);
    let ds = SyntheticDataset::new(SyntheticConfig::uniform(5, 300, 3, 4)).unwrap();
    for world in [1usize, 2, 4, 8] {
        let plan = Planner::new(CostModel::v100_prototype(32), PlannerConfig::default())
            .plan(&specs_of(&model), world)
            .unwrap();
        let cfg = SyncConfig::exact(world, model.clone(), plan, 32);
        let batches: Vec<_> = (0..3).map(|k| ds.batch(32, k)).collect();
        let out = SyncTrainer::new(cfg).train(&batches, &[], 0, None).unwrap();
        assert_eq!(out.losses.len(), 3, "world {world}");
        assert!(out.losses.iter().all(|l| l.is_finite()));
    }
}

#[test]
fn sync_large_batch_quality_on_par_with_async_small_batch() {
    // the Fig. 10 claim as a regression test (abbreviated workload)
    let model = DlrmConfig::tiny(3, 256, 8);
    let ds = SyntheticDataset::new(SyntheticConfig::uniform(3, 256, 4, 4)).unwrap();
    let eval: Vec<_> = (30_000..30_006).map(|k| ds.batch(128, k)).collect();
    let budget = 16_384u64; // samples

    let mut ps = PsTrainer::new(PsConfig {
        model: model.clone(),
        num_trainers: 4,
        batch_size: 16,
        staleness: 8,
        lr: 0.03,
        seed: 5,
        dense_sync: Default::default(),
    })
    .unwrap();
    ps.train(&ds, budget / 16, &[]).unwrap();
    let async_ne = ps.evaluate(&eval).unwrap();

    let plan = Planner::new(CostModel::v100_prototype(128), PlannerConfig::default())
        .plan(&specs_of(&model), 4)
        .unwrap();
    let mut cfg = SyncConfig::exact(4, model, plan, 128);
    cfg.lr = 0.03 * (128.0 / 16.0); // linear LR scaling
    cfg.seed = 5;
    let batches: Vec<_> = (0..budget / 128)
        .map(|k| ds.batch(128, k + 90_000))
        .collect();
    let out = SyncTrainer::new(cfg)
        .train(&batches, &eval, 0, None)
        .unwrap();
    let sync_ne = out.ne_curve.last().unwrap().1;

    assert!(
        sync_ne < async_ne + 0.02,
        "sync NE {sync_ne:.4} on par with async NE {async_ne:.4}"
    );
}

#[test]
fn hierarchical_plan_trains_end_to_end() {
    // §4.2.5 table-wise-then-row-wise: row shards confined to one "node";
    // must train identically well through the sync trainer
    use neo_dlrm::sharding::planner::Algorithm;
    let model = DlrmConfig::tiny(4, 50_000, 8); // big tables -> row-wise
    let ds = SyntheticDataset::new(SyntheticConfig::uniform(4, 50_000, 3, 4)).unwrap();
    let mut pc = PlannerConfig::default()
        .with_algorithm(Algorithm::Greedy)
        .hierarchical(2); // "nodes" of 2 workers
    pc.rowwise_min_bytes = 1 << 20; // force row-wise for these tables
    let plan = Planner::new(CostModel::v100_prototype(32), pc)
        .plan(&specs_of(&model), 4)
        .unwrap();
    // every row-wise placement must sit inside a single 2-worker node
    let mut saw_rowwise = false;
    for p in &plan.placements {
        if let neo_dlrm::sharding::Scheme::RowWise { workers } = &p.scheme {
            saw_rowwise = true;
            assert_eq!(workers.len(), 2);
            assert_eq!(workers[0] / 2, workers[1] / 2, "same node: {workers:?}");
        }
    }
    assert!(saw_rowwise, "test premise: tables were row-sharded");

    let cfg = SyncConfig::exact(4, model, plan, 32);
    // Fresh 50k-row tables see each embedding row about once per epoch, so
    // single-pass loss stays at noise level regardless of sharding; cycle a
    // small set of batches so learning (memorization) is observable and the
    // row-wise + hierarchical path is exercised across repeated updates.
    let uniq: Vec<_> = (0..4u64).map(|k| ds.batch(32, k)).collect();
    let batches: Vec<_> = (0..32).map(|i| uniq[i % 4].clone()).collect();
    let out = SyncTrainer::new(cfg).train(&batches, &[], 0, None).unwrap();
    assert!(out.losses.iter().all(|l| l.is_finite()));
    let first_epoch: f32 = out.losses[..4].iter().sum::<f32>() / 4.0;
    let last_epoch: f32 = out.losses[28..].iter().sum::<f32>() / 4.0;
    assert!(
        last_epoch < first_epoch,
        "row-wise hierarchical training learns: {first_epoch:.4} -> {last_epoch:.4}"
    );
}

#[test]
fn tt_compressed_tables_train_in_the_model() {
    // TT-Rec (§4.1.4) as drop-in storage: swap a dense table for a
    // tensor-train factorized one and keep training
    use neo_dlrm::dlrm::bce_with_logits;
    use neo_dlrm::embeddings::ttrec::{TtRecTable, TtShape};
    use neo_dlrm::embeddings::{SparseOptimizer, SparseSgd};
    use neo_dlrm::trainer::init::reference_model;
    use rand::SeedableRng;

    let cfg = DlrmConfig::tiny(3, 256, 8); // 256 = 16*16 rows, 8 = 2*4 dims
    let mut model = reference_model(&cfg, 3).unwrap();
    let shape = TtShape {
        h1: 16,
        h2: 16,
        d1: 2,
        d2: 4,
        rank: 4,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let tt = TtRecTable::random(shape, &mut rng)
        .unwrap()
        .with_write_lr(0.5);
    let dense_bytes = 256 * 8 * 4;
    assert!(
        tt.shape().compressed_params() * 4 < dense_bytes / 2,
        "compressed"
    );
    model.tables[1] = Box::new(tt);

    let ds = SyntheticDataset::new(SyntheticConfig::uniform(3, 256, 3, 4)).unwrap();
    let mut opts: Vec<SparseSgd> = (0..3).map(|_| SparseSgd::new(0.05)).collect();
    let eval = ds.batch(128, 999);
    let loss_of = |m: &mut neo_dlrm::dlrm::DlrmModel| {
        let logits = m.forward_inference(&eval).unwrap();
        bce_with_logits(&logits, &eval.labels).unwrap().0
    };
    let before = loss_of(&mut model);
    for k in 0..40 {
        let b = ds.batch(64, k);
        let logits = model.forward(&b).unwrap();
        let (_, g) = bce_with_logits(&logits, &b.labels).unwrap();
        let sparse = model.backward(&g).unwrap();
        model.dense_sgd_step(0.05);
        for (opt, (table, sg)) in opts.iter_mut().zip(model.tables.iter_mut().zip(&sparse)) {
            opt.step(table.as_mut(), sg);
        }
    }
    let after = loss_of(&mut model);
    assert!(
        after < before,
        "TT tables keep learning: {before:.4} -> {after:.4}"
    );
}
