//! The §4.1.2 reproducibility guarantees: deterministic exact sparse
//! updates plus rank-ordered reductions make training bit-wise reproducible
//! run-to-run, and checkpoints restore exactly.

use neo_dlrm::collectives::QuantMode;
use neo_dlrm::dataio::{SyntheticConfig, SyntheticDataset};
use neo_dlrm::dlrm::{bce_with_logits, DlrmConfig};
use neo_dlrm::embeddings::{SparseAdagrad, SparseOptimizer};
use neo_dlrm::sharding::{CostModel, Planner, PlannerConfig, TableSpec};
use neo_dlrm::tensor::Tensor2;
use neo_dlrm::trainer::checkpoint;
use neo_dlrm::trainer::init::reference_model;
use neo_dlrm::trainer::{SyncConfig, SyncTrainer};

fn model_cfg() -> DlrmConfig {
    DlrmConfig::tiny(3, 128, 8)
}

fn dataset() -> SyntheticDataset {
    SyntheticDataset::new(SyntheticConfig::uniform(3, 128, 3, 4)).unwrap()
}

fn planned(world: usize, batch: usize) -> SyncConfig {
    let cfg = model_cfg();
    let specs: Vec<TableSpec> = cfg
        .tables
        .iter()
        .enumerate()
        .map(|(i, t)| TableSpec::new(i, t.num_rows, t.dim, t.avg_pooling as f64))
        .collect();
    let plan = Planner::new(CostModel::v100_prototype(batch), PlannerConfig::default())
        .plan(&specs, world)
        .unwrap();
    SyncConfig::exact(world, cfg, plan, batch)
}

fn run_distributed(world: usize, seed: u64) -> Tensor2 {
    let ds = dataset();
    let batches: Vec<_> = (0..8).map(|k| ds.batch(32, k)).collect();
    let probe = ds.batch(32, 555);
    let mut cfg = planned(world, 32);
    cfg.seed = seed;
    SyncTrainer::new(cfg)
        .train(&batches, &[], 0, Some(&probe))
        .unwrap()
        .probe_logits
        .unwrap()
}

#[test]
fn distributed_training_bitwise_reproducible() {
    assert_eq!(run_distributed(4, 42), run_distributed(4, 42));
    assert_eq!(run_distributed(2, 42), run_distributed(2, 42));
}

#[test]
fn armed_telemetry_does_not_perturb_training() {
    // observability must be free: arming the metrics registry adds clock
    // reads and span records but must never touch the numerics — the
    // probe logits stay bitwise identical to an unarmed run.
    let ds = dataset();
    let batches: Vec<_> = (0..8).map(|k| ds.batch(32, k)).collect();
    let probe = ds.batch(32, 555);
    let run = |armed: bool| {
        let mut cfg = planned(4, 32);
        cfg.seed = 42;
        if armed {
            cfg.telemetry = neo_dlrm::telemetry::TelemetrySink::armed();
        }
        let out = SyncTrainer::new(cfg)
            .train(&batches, &[], 0, Some(&probe))
            .unwrap();
        assert_eq!(out.telemetry_summary.is_some(), armed);
        out.probe_logits.unwrap()
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn overlap_schedule_bitwise_matches_serial() {
    // The Fig. 9 overlapped schedule only reorders data-independent work
    // (posted collectives still reduce in rank order on the comm lane),
    // so for every world size and quantization mode the loss trajectory,
    // the probe logits, and every trained embedding row must be bitwise
    // identical to the serial schedule.
    let ds = dataset();
    let batches: Vec<_> = (0..6).map(|k| ds.batch(32, k)).collect();
    let probe = ds.batch(32, 555);
    for world in [2, 4] {
        for (qf, qb) in [
            (QuantMode::Fp32, QuantMode::Fp32),
            (QuantMode::Fp16, QuantMode::Bf16),
        ] {
            let run = |overlap: bool| {
                let mut cfg = planned(world, 32);
                cfg.seed = 42;
                cfg.quant_fwd = qf;
                cfg.quant_bwd = qb;
                cfg.overlap = overlap;
                cfg.gather_final_model = true;
                SyncTrainer::new(cfg)
                    .train(&batches, &[], 0, Some(&probe))
                    .unwrap()
            };
            let serial = run(false);
            let overlapped = run(true);
            let tag = format!("world {world}, quant {qf:?}/{qb:?}");
            assert_eq!(serial.losses, overlapped.losses, "losses diverge: {tag}");
            assert_eq!(
                serial.probe_logits, overlapped.probe_logits,
                "probe logits diverge: {tag}"
            );
            let mut a = serial.final_model.expect("gathered serial model");
            let mut b = overlapped.final_model.expect("gathered overlapped model");
            for (t, (ta, tb)) in a.tables.iter_mut().zip(b.tables.iter_mut()).enumerate() {
                let d = ta.dim();
                let (mut ra, mut rb) = (vec![0.0f32; d], vec![0.0f32; d]);
                for row in 0..ta.num_rows() {
                    ta.read_row(row, &mut ra);
                    tb.read_row(row, &mut rb);
                    assert_eq!(ra, rb, "embedding row diverges: table {t} row {row}, {tag}");
                }
            }
        }
    }
}

#[test]
fn different_seeds_differ() {
    assert_ne!(run_distributed(4, 42), run_distributed(4, 43));
}

#[test]
fn worker_counts_agree_within_float_tolerance() {
    // not bit-wise (reduction trees differ), but numerically equivalent
    let w1 = run_distributed(1, 42);
    let w4 = run_distributed(4, 42);
    assert!(w1.max_abs_diff(&w4).unwrap() < 2e-3);
}

#[test]
fn exact_sparse_optimizer_reproducible_under_shuffled_arrival() {
    // the sorted-merge of §4.1.2: the same multiset of (row, grad) pairs,
    // presented in different orders, must produce identical tables when the
    // duplicate rows carry identical gradients (GPU-atomics would not)
    use neo_dlrm::embeddings::{bag::SparseGrad, DenseStore, RowStore};

    let pairs: Vec<(u64, f32)> = vec![(5, 0.1), (2, 0.2), (5, 0.1), (9, 0.05), (2, 0.2), (5, 0.1)];
    let run = |order: &[usize]| {
        let mut store = DenseStore::zeros(16, 2);
        let mut opt = SparseAdagrad::new(0.1, 1e-8, 16, 2);
        let indices: Vec<u64> = order.iter().map(|&k| pairs[k].0).collect();
        let grads = Tensor2::from_fn(order.len(), 2, |i, _| pairs[order[i]].1);
        opt.step(&mut store, &SparseGrad { indices, grads });
        store.to_dense()
    };
    let forward = run(&[0, 1, 2, 3, 4, 5]);
    let shuffled = run(&[5, 3, 1, 4, 0, 2]);
    assert_eq!(
        forward, shuffled,
        "merge-sorted updates are order-independent"
    );
}

#[test]
fn checkpoint_roundtrip_through_training() {
    let ds = dataset();
    let mut m = reference_model(&model_cfg(), 9).unwrap();
    let mut opts: Vec<SparseAdagrad> = (0..3)
        .map(|_| SparseAdagrad::new(0.05, 1e-8, 128, 8))
        .collect();
    for k in 0..5 {
        let b = ds.batch(16, k);
        let logits = m.forward(&b).unwrap();
        let (_, g) = bce_with_logits(&logits, &b.labels).unwrap();
        let sparse = m.backward(&g).unwrap();
        m.dense_sgd_step(0.05);
        for (opt, (table, sg)) in opts.iter_mut().zip(m.tables.iter_mut().zip(&sparse)) {
            opt.step(table.as_mut(), sg);
        }
    }
    let probe = ds.batch(16, 777);
    let want = m.forward_inference(&probe).unwrap();
    let bytes = checkpoint::save(&mut m);

    let mut restored = reference_model(&model_cfg(), 1234).unwrap();
    checkpoint::load(&mut restored, &bytes).unwrap();
    assert_eq!(restored.forward_inference(&probe).unwrap(), want);
}

#[test]
fn synthetic_batches_identical_across_processes() {
    // the data side of determinism: batch k is a pure function of config
    let a = dataset().batch(64, 3);
    let b = dataset().batch(64, 3);
    assert_eq!(a, b);
    assert_eq!(a.indices(), b.indices());
}
